//! The ICBM *match* phase (paper §5.2, Figure 5).
//!
//! Partitions the branch chain of a hyperblock into *CPR blocks*: maximal
//! runs of consecutive branches that can be correctly and profitably
//! collapsed into one bypass branch. Four tests gate growth:
//!
//! * **Suitability** — guarantees that the schema's simplified off-trace
//!   FRP, `root ∧ (bc₁ ∨ … ∨ bcₙ)`, is true exactly when one of the block's
//!   branches takes. Implemented with the *suitable predicate set* (SP)
//!   induction from the paper, over unique reaching `cmpp` definitions.
//! * **Separability** — the compares that will move off-trace must have no
//!   dependence path to a lookahead compare that stays on-trace. Implemented
//!   over the region dependence graph, ignoring the chain-guard edges that
//!   the paper's `append-successors` ignores.
//! * **Exit-weight** — stop growing when the cumulative probability of
//!   leaving through the block exceeds a threshold.
//! * **Predict-taken** — a candidate branch that is predominantly taken
//!   joins the block as its final branch and flags the *taken variation*.

use std::collections::HashSet;

use epic_analysis::{DepGraph, DepKind, PredDef, PredReaching};
use epic_ir::{Op, OpId, Opcode, PredActionKind, PredReg, Profile};

use crate::config::CprConfig;

/// One CPR block: a run of consecutive branches of a hyperblock, identified
/// by stable operation ids (positions shift as earlier blocks restructure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CprBlock {
    /// The branches, in program order.
    pub branches: Vec<OpId>,
    /// The controlling compare of each branch (same length as `branches`).
    pub compares: Vec<OpId>,
    /// True when the final branch is predominantly taken and the block uses
    /// the taken variation of restructure.
    pub taken_variation: bool,
}

impl CprBlock {
    /// True for blocks the restructure phase will actually transform.
    /// Unit-length fall-through blocks are left unchanged (paper Figure 3).
    pub fn is_nontrivial(&self) -> bool {
        self.branches.len() >= 2
    }
}

/// A predicate *value*: register name plus defining op index (`None` =
/// defined outside the region / the constant `T`). Keying the suitable
/// predicate set by definition site keeps the induction sound when unrolled
/// code reuses predicate register names across iterations.
type PredKey = (Option<PredReg>, Option<usize>);

/// Per-branch info gathered before matching.
struct BranchInfo {
    /// Op index of the branch.
    pos: usize,
    /// Op index of its controlling compare (unique reaching def with an
    /// unconditional action), when suitable.
    cmpp: Option<usize>,
    /// The compare's guard as a (name, def-site) value; `(None, None)` = `T`.
    cmpp_guard: Option<PredKey>,
    /// The compare's UC complementary output, if present.
    fallthrough_pred: Option<PredReg>,
}

/// Runs the match phase over the ops of one hyperblock.
///
/// `ops` must be the current operations of the block; `profile` supplies
/// branch frequencies (ids must refer to these ops). Returns the CPR blocks
/// covering every conditional branch of the chain, in program order.
pub fn match_cpr_blocks(
    ops: &[Op],
    profile: &Profile,
    cfg: &CprConfig,
    mem_classes: &std::collections::HashMap<OpId, u32>,
) -> Vec<CprBlock> {
    // The candidate chain: conditional branches, in order. An unconditional
    // branch ends the chain (nothing beyond it executes on trace).
    let mut chain: Vec<usize> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        if op.opcode == Opcode::Branch {
            if op.guard.is_none() {
                break;
            }
            chain.push(i);
        }
    }
    if chain.is_empty() {
        return Vec::new();
    }

    let reaching = PredReaching::compute(ops);
    let mut facts = epic_analysis::PredFacts::compute(ops);
    let dep_opts = epic_analysis::DepOptions {
        mem_classes: mem_classes.clone(),
        ..epic_analysis::DepOptions::default()
    };
    // The separability closure follows flow/memory edges only; skip the
    // control half of the graph.
    let graph = DepGraph::build_data(ops, &mut facts, &dep_opts);

    let infos: Vec<BranchInfo> = chain
        .iter()
        .map(|&pos| branch_info(ops, &reaching, pos))
        .collect();

    let mut result: Vec<CprBlock> = Vec::new();
    let mut next = 0usize;
    while next < infos.len() {
        let seed = &infos[next];
        let mut block = CprBlock {
            branches: vec![ops[seed.pos].id],
            compares: Vec::new(),
            taken_variation: false,
        };
        // --- suitability init ---
        let mut sp: HashSet<PredKey> = HashSet::new();
        let mut suitable = false;
        if let (Some(cmpp), Some(guard)) = (seed.cmpp, seed.cmpp_guard) {
            suitable = true;
            block.compares.push(ops[cmpp].id);
            sp.insert(guard); // the root predicate
            if let Some(ft) = seed.fallthrough_pred {
                sp.insert((Some(ft), Some(cmpp)));
            }
        }
        // --- separability init ---
        let mut succ: HashSet<usize> = HashSet::new();
        if let Some(cmpp) = seed.cmpp {
            append_successors(ops, &graph, cmpp, &mut succ);
        }
        // Entry frequency of the CPR block: how often its seed branch was
        // reached.
        let entry = profile.executed_count(ops[seed.pos].id).max(1) as f64;
        let mut cum_exit = profile.taken_count(ops[seed.pos].id) as f64;

        let mut cur = next;
        while suitable && block.branches.len() < cfg.max_branches {
            let cand_idx = cur + 1;
            if cand_idx >= infos.len() {
                break;
            }
            let cand = &infos[cand_idx];
            // Suitability growth step.
            let (Some(c_cmpp), Some(c_guard)) = (cand.cmpp, cand.cmpp_guard) else {
                if std::env::var("MATCH_DEBUG").is_ok() {
                    eprintln!("MATCH-STOP: no suitable compare for {}", ops[cand.pos]);
                }
                break;
            };
            if !sp.contains(&c_guard) {
                if std::env::var("MATCH_DEBUG").is_ok() {
                    eprintln!("MATCH-STOP: guard {c_guard:?} of {} not in SP {sp:?}", ops[c_cmpp]);
                }
                break;
            }
            // Separability: the candidate's compare must not depend on any
            // compare already in the block.
            if succ.contains(&c_cmpp) {
                if std::env::var("MATCH_DEBUG").is_ok() {
                    eprintln!("MATCH-STOP: separability for {}", ops[c_cmpp]);
                }
                break;
            }
            // Predict-taken heuristic.
            let taken = profile.taken_count(ops[cand.pos].id) as f64;
            let mut is_taken_block = false;
            if cfg.enable_taken_variation && taken / entry >= cfg.predict_taken_threshold {
                is_taken_block = true;
            }
            // Exit-weight heuristic (skipped for a predicted-taken final).
            if !is_taken_block
                && (cum_exit + taken) / entry > cfg.exit_weight_threshold
            {
                break;
            }
            // Append the candidate.
            block.branches.push(ops[cand.pos].id);
            block.compares.push(ops[c_cmpp].id);
            if let Some(ft) = cand.fallthrough_pred {
                sp.insert((Some(ft), Some(c_cmpp)));
            }
            append_successors(ops, &graph, c_cmpp, &mut succ);
            cum_exit += taken;
            cur = cand_idx;
            if is_taken_block {
                block.taken_variation = true;
                break;
            }
        }
        if !suitable {
            block.compares.clear();
        }
        next = cur + 1;
        result.push(block);
    }
    result
}

fn branch_info(ops: &[Op], reaching: &PredReaching, pos: usize) -> BranchInfo {
    let mut info =
        BranchInfo { pos, cmpp: None, cmpp_guard: None, fallthrough_pred: None };
    let guard = ops[pos].guard.expect("conditional branch");
    let def = match reaching.guard_def(pos) {
        Some(PredDef::Op(j)) => j,
        _ => return info,
    };
    let cmpp = &ops[def];
    if !cmpp.is_cmpp() {
        return info;
    }
    // The compare's guard as a value: name plus its own reaching def site.
    let guard_key: PredKey = match cmpp.guard {
        None => (None, None),
        Some(g) => match reaching.guard_def(def) {
            Some(PredDef::Op(j)) => (Some(g), Some(j)),
            Some(PredDef::Entry) => (Some(g), None),
            _ => return info, // ambiguous guard definition: unsuitable
        },
    };
    // The branch guard must be computed with an unconditional action.
    let mut taken_uncond = false;
    let mut ft = None;
    for d in &cmpp.dests {
        if let epic_ir::Dest::Pred(p, a) = *d {
            if p == guard && a.kind == PredActionKind::Uncond {
                taken_uncond = true;
            } else if p != guard && a.kind == PredActionKind::Uncond {
                ft = Some(p);
            }
        }
    }
    if !taken_uncond {
        return info;
    }
    info.cmpp = Some(def);
    info.cmpp_guard = Some(guard_key);
    info.fallthrough_pred = ft;
    info
}

/// Accumulates the dependence successors of compare `cmpp` into `succ`,
/// ignoring the chain-guard edges: a flow edge from the compare to another
/// compare whose only dependence is using the fall-through predicate as its
/// guard (those guards are replaced by the root predicate in the lookahead
/// compares, so they impose no on-trace ordering).
fn append_successors(ops: &[Op], graph: &DepGraph, cmpp: usize, succ: &mut HashSet<usize>) {
    let mut work = vec![cmpp];
    let mut seen: HashSet<usize> = HashSet::new();
    while let Some(i) = work.pop() {
        for e in graph.succs(i) {
            if !matches!(e.kind, DepKind::Flow | DepKind::Mem) {
                continue;
            }
            let to = e.to;
            if seen.contains(&to) {
                continue;
            }
            // Chain-guard exemption, only for direct successors of the seed
            // compare: a cmpp whose *guard* is one of our outputs but which
            // has no data use of them.
            if i == cmpp && ops[to].is_cmpp() {
                let our_preds: HashSet<PredReg> = ops[cmpp].defs_preds().collect();
                let guard_only = ops[to]
                    .guard
                    .map(|g| our_preds.contains(&g))
                    .unwrap_or(false)
                    && !ops[to].uses_preds().any(|p| our_preds.contains(&p))
                    && !ops[to].uses_regs().any(|_| false);
                if guard_only {
                    continue;
                }
            }
            seen.insert(to);
            succ.insert(to);
            work.push(to);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{BlockId, CmpCond, FunctionBuilder, Function, Operand};
    use epic_interp::{run, Input};

    /// FRP-converted 4-branch chain with a biased profile; the final branch
    /// is a likely-taken back edge.
    fn loopish(fallthrough_bias: bool) -> (Function, epic_ir::Reg, BlockId) {
        let mut fb = FunctionBuilder::new("loopish");
        let sb = fb.block("sb");
        let exit = fb.block("exit");
        fb.switch_to(exit);
        fb.ret();
        fb.switch_to(sb);
        let a = fb.reg();
        let mut guard = None;
        for k in 0..3 {
            fb.set_guard(guard);
            let addr = fb.add(a.into(), Operand::Imm(k));
            let v = fb.load(addr);
            let (t, f_) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
            fb.branch_if(t, exit);
            guard = Some(f_);
        }
        fb.set_guard(guard);
        let a2 = fb.add(a.into(), Operand::Imm(3));
        fb.mov_to(a, a2.into());
        let v = fb.load(a);
        let (cont, _stop) = fb.cmpp_un_uc(CmpCond::Ne, v.into(), Operand::Imm(0));
        fb.branch_if(cont, sb);
        fb.set_guard(None);
        fb.ret();
        let f = fb.finish();
        // Make the loads unguarded so separability passes (predicate
        // speculation would do this; tests drive match directly).
        let mut f = f;
        for op in &mut f.block_mut(sb).ops {
            if matches!(op.opcode, Opcode::Load | Opcode::Add | Opcode::Mov | Opcode::Pbr) {
                op.guard = None;
            }
        }
        let _ = fallthrough_bias;
        (f, a, sb)
    }

    fn profiled(f: &Function, a: epic_ir::Reg) -> Profile {
        // A long run of non-zero words ending in 0: exits rare, back edge
        // hot.
        let mut image = vec![5i64; 120];
        image.push(0);
        let input = Input::new().memory_size(256).with_memory(0, &image).with_reg(a, 0);
        run(f, &input).unwrap().profile
    }

    #[test]
    fn forms_taken_variation_block_for_back_edge() {
        let (f, a, sb) = loopish(true);
        let profile = profiled(&f, a);
        let cfg = CprConfig { min_entry_count: 1, ..CprConfig::default() };
        let blocks = match_cpr_blocks(&f.block(sb).ops, &profile, &cfg, f.mem_classes());
        // All four branches covered.
        let total: usize = blocks.iter().map(|b| b.branches.len()).sum();
        assert_eq!(total, 4);
        // The last block ends with the likely-taken back edge.
        let last = blocks.last().unwrap();
        assert!(last.taken_variation, "{blocks:?}");
    }

    #[test]
    fn exit_weight_truncates_blocks() {
        let (f, a, sb) = loopish(true);
        let profile = profiled(&f, a);
        // Negative threshold: every block stops at one branch.
        let cfg = CprConfig {
            exit_weight_threshold: -1.0,
            predict_taken_threshold: 2.0, // never
            enable_taken_variation: false,
            ..CprConfig::default()
        };
        let blocks = match_cpr_blocks(&f.block(sb).ops, &profile, &cfg, f.mem_classes());
        assert!(blocks.iter().all(|b| b.branches.len() == 1), "{blocks:?}");
    }

    #[test]
    fn uniform_config_groups_everything() {
        let (f, a, sb) = loopish(true);
        let profile = profiled(&f, a);
        let cfg = CprConfig { enable_taken_variation: false, ..CprConfig::uniform() };
        let blocks = match_cpr_blocks(&f.block(sb).ops, &profile, &cfg, f.mem_classes());
        assert_eq!(blocks.len(), 1, "{blocks:?}");
        assert_eq!(blocks[0].branches.len(), 4);
    }

    #[test]
    fn separability_violation_splits_blocks() {
        // Branch 2's compare reads a value loaded from an address that
        // *depends on the first compare's output* — a dependence from a
        // to-be-moved compare to a lookahead compare. Growth must stop.
        let mut fb = FunctionBuilder::new("sep");
        let sb = fb.block("sb");
        let exit = fb.block("exit");
        fb.switch_to(exit);
        fb.ret();
        fb.switch_to(sb);
        let a = fb.reg();
        let v1 = fb.load(a);
        let (t1, f1) = fb.cmpp_un_uc(CmpCond::Eq, v1.into(), Operand::Imm(0));
        fb.branch_if(t1, exit);
        // f1 used as *data* to compute the next address: a real dependence
        // on the first compare that append-successors must not ignore.
        let addr = fb.add(a.into(), Operand::Pred(f1));
        let v2 = fb.load(addr);
        let (t2, _f2) = fb.cmpp_un_uc(CmpCond::Eq, v2.into(), Operand::Imm(0));
        fb.set_guard(Some(f1));
        fb.branch_if(t2, exit);
        fb.set_guard(None);
        fb.ret();
        let mut f = fb.finish();
        // cmpp2 must be guarded by f1 for suitability; keep it that way but
        // note its *sources* depend on cmpp1 = separability failure.
        let cmpp2_pos = f
            .block(sb)
            .ops
            .iter()
            .position(|o| o.is_cmpp() && o.uses_regs().any(|r| r == v2))
            .unwrap();
        f.block_mut(sb).ops[cmpp2_pos].guard = Some(f1);
        let profile = Profile::new();
        let cfg = CprConfig { enable_taken_variation: false, ..CprConfig::uniform() };
        let blocks = match_cpr_blocks(&f.block(sb).ops, &profile, &cfg, f.mem_classes());
        assert_eq!(blocks.len(), 2, "separability must split: {blocks:?}");
    }

    #[test]
    fn entry_guard_is_unsuitable_seed() {
        // A branch guarded by a predicate defined outside the block forms a
        // trivial (untransformable) CPR block.
        let mut fb = FunctionBuilder::new("entry");
        let sb = fb.block("sb");
        let exit = fb.block("exit");
        fb.switch_to(exit);
        fb.ret();
        fb.switch_to(sb);
        let p = fb.pred();
        fb.branch_if(p, exit);
        fb.ret();
        let f = fb.finish();
        let blocks = match_cpr_blocks(&f.block(sb).ops, &Profile::new(), &CprConfig::uniform(), f.mem_classes());
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].compares.is_empty());
        assert!(!blocks[0].is_nontrivial());
    }

    #[test]
    fn chain_guard_dependence_is_ignored() {
        // The classic FRP chain: cmpp2 guarded by cmpp1's UC output. That
        // guard dependence alone must NOT stop growth.
        let (f, a, sb) = loopish(true);
        let profile = profiled(&f, a);
        let cfg = CprConfig {
            exit_weight_threshold: 1.1,
            predict_taken_threshold: 2.0,
            enable_taken_variation: false,
            min_entry_count: 1,
            ..CprConfig::default()
        };
        let blocks = match_cpr_blocks(&f.block(sb).ops, &profile, &cfg, f.mem_classes());
        assert_eq!(blocks.len(), 1, "guard chaining alone must not split: {blocks:?}");
    }
}
