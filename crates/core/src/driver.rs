//! The ICBM pipeline driver: speculate → match → restructure → off-trace
//! motion → dead code elimination, per hyperblock (paper §5).

use epic_analysis::IncrementalLiveness;
use epic_ir::{BlockId, Function, Profile};
use epic_obs::Span;

use crate::config::CprConfig;
use crate::dce::dce;
use crate::matching::match_cpr_blocks;
use crate::motion::off_trace_motion;
use crate::restructure::restructure;
use crate::speculate::speculate;

/// Statistics from one [`apply_icbm`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IcbmStats {
    /// Hyperblocks examined.
    pub hyperblocks: usize,
    /// Non-trivial CPR blocks transformed.
    pub cpr_blocks: usize,
    /// CPR blocks using the taken variation.
    pub taken_blocks: usize,
    /// Original branches collapsed into bypass branches.
    pub branches_collapsed: usize,
    /// CPR blocks skipped by legality pre-checks.
    pub skipped: usize,
    /// Guards promoted by predicate speculation.
    pub promoted: usize,
    /// Promotions undone by demotion.
    pub demoted: usize,
    /// Dead operations removed by the final DCE pass.
    pub dce_removed: usize,
}

/// Applies the complete ICBM control CPR transformation to every hot
/// hyperblock of `func`.
///
/// `profile` drives the exit-weight and predict-taken heuristics; its ids
/// must refer to `func` as given. The transformation is semantics-
/// preserving for any profile (the profile only affects how CPR blocks are
/// chosen, never correctness).
pub fn apply_icbm(func: &mut Function, profile: &Profile, cfg: &CprConfig) -> IcbmStats {
    let mut stats = IcbmStats::default();

    if !cfg.enable {
        return stats;
    }

    if cfg.speculate {
        // Sub-spans land in the global tracer under the `icbm` category
        // (inert single-atomic-load guards while tracing is disabled), so
        // a `--trace` export breaks the icbm pipeline stage down into its
        // speculate/match/restructure/motion/dce phases.
        let _s = Span::enter("icbm.speculate", "icbm");
        let s = speculate(func);
        stats.promoted = s.promoted;
        stats.demoted = s.demoted;
    }

    let hyperblocks: Vec<BlockId> = func
        .layout
        .iter()
        .copied()
        .filter(|&b| {
            let branch_count = func
                .block(b)
                .ops
                .iter()
                .filter(|o| o.opcode == epic_ir::Opcode::Branch && o.guard.is_some())
                .count();
            branch_count >= 2 && profile.entry_count(b) >= cfg.min_entry_count
        })
        .collect();

    // The mem-class map is append-only (cloned ops inherit their source's
    // class), so the snapshot taken here stays valid for matching every
    // still-unprocessed hyperblock: restructure/motion only edit the
    // hyperblock they are applied to.
    let mem_classes = func.mem_classes().clone();
    // Liveness is maintained incrementally: restructure and off-trace motion
    // touch exactly the CPR block and its compensation block, so only those
    // two summaries are recomputed per mutation instead of re-analyzing the
    // whole function per CPR block.
    let mut live = {
        let _s = Span::enter("icbm.liveness", "icbm");
        IncrementalLiveness::new(func)
    };

    for hb in hyperblocks {
        stats.hyperblocks += 1;
        let cpr_blocks = {
            let _s = Span::enter("icbm.match", "icbm");
            match_cpr_blocks(&func.block(hb).ops, profile, cfg, &mem_classes)
        };
        // Forward order: each block's on-trace FRP becomes the root
        // predicate of the next via the re-wiring step.
        for cpr in &cpr_blocks {
            if !cpr.is_nontrivial() {
                continue;
            }
            // Motion can still refuse after a successful restructure (its
            // legality checks see the moved-set closure, which restructure
            // cannot predict); snapshot the hyperblock so a refusal leaves
            // no lookahead/bypass overhead behind.
            let saved_ops = func.block(hb).ops.clone();
            let restructured = {
                let _s = Span::enter("icbm.restructure", "icbm");
                restructure(func, hb, cpr, live.live())
            };
            let Some(r) = restructured else {
                stats.skipped += 1;
                continue;
            };
            {
                let _s = Span::enter("icbm.liveness", "icbm");
                live.repair(func, &r.touched_blocks());
            }
            let moved = {
                let _s = Span::enter("icbm.motion", "icbm");
                off_trace_motion(func, &r, live.live())
            };
            if moved {
                let _s = Span::enter("icbm.liveness", "icbm");
                live.repair(func, &r.touched_blocks());
                stats.cpr_blocks += 1;
                if r.taken_variation {
                    stats.taken_blocks += 1;
                }
                stats.branches_collapsed += cpr.branches.len();
            } else {
                // Roll the restructure back: restore the hyperblock and
                // detach the compensation block from the layout.
                func.block_mut(hb).ops = saved_ops;
                func.layout.retain(|&b| b != r.comp);
                {
                    let _s = Span::enter("icbm.liveness", "icbm");
                    live.repair(func, &[hb]);
                }
                stats.skipped += 1;
            }
        }
    }

    {
        let _s = Span::enter("icbm.dce", "icbm");
        stats.dce_removed = dce(func);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{CmpCond, FunctionBuilder, Operand};
    use epic_interp::{diff_test, run, Input};

    /// Builds the full pre-ICBM pipeline shape by hand: an FRP-converted,
    /// unrolled string-scan superblock with a hot back edge.
    fn workload() -> (Function, epic_ir::Reg, BlockId) {
        let mut fb = FunctionBuilder::new("scan");
        let sb = fb.block("sb");
        let exit = fb.block("exit");
        fb.switch_to(exit);
        fb.ret();
        fb.switch_to(sb);
        let a = fb.reg();
        let mut guard = None;
        for k in 0..3i64 {
            fb.set_guard(None);
            let addr = fb.add(a.into(), Operand::Imm(k));
            fb.set_alias_class(Some(1));
            let v = fb.load(addr);
            fb.set_alias_class(Some(2));
            fb.set_guard(guard);
            let (t, f_) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
            fb.branch_if(t, exit);
            fb.set_guard(Some(f_));
            let d = fb.add(addr.into(), Operand::Imm(100));
            fb.store(d, v.into());
            guard = Some(f_);
        }
        // Back edge: continue while the next element is non-zero. As in the
        // paper's Figure 6(b), the advanced pointer is computed into a fresh
        // register (speculatively) and committed separately, so the
        // back-edge compare chain stays separable.
        fb.set_guard(None);
        let a2 = fb.add(a.into(), Operand::Imm(3));
        fb.set_alias_class(Some(1));
        let probe = fb.load(a2);
        fb.set_alias_class(None);
        fb.set_guard(guard);
        fb.mov_to(a, a2.into());
        let (cont, _stop) = fb.cmpp_un_uc(CmpCond::Ne, probe.into(), Operand::Imm(0));
        fb.branch_if(cont, sb);
        fb.set_guard(None);
        fb.ret();
        (fb.finish(), a, sb)
    }

    fn training_input(a: epic_ir::Reg) -> Input {
        let mut image = vec![3i64; 60];
        image.push(0);
        image.resize(200, 0);
        Input::new().memory_size(200).with_memory(0, &image).with_reg(a, 0)
    }

    #[test]
    fn end_to_end_transforms_and_preserves_semantics() {
        let (f, a, sb) = workload();
        let profile = run(&f, &training_input(a)).unwrap().profile;
        let mut g = f.clone();
        let cfg = CprConfig { min_entry_count: 1, ..CprConfig::default() };
        let stats = apply_icbm(&mut g, &profile, &cfg);
        assert!(stats.cpr_blocks >= 1, "{stats:?}\n{g}");
        assert!(stats.branches_collapsed >= 2);
        epic_ir::verify(&g).unwrap();
        // Differential test on many images, including ones that exercise
        // every early exit.
        for zero_at in 0..8usize {
            let mut image = vec![2i64; 24];
            image[zero_at] = 0;
            image.resize(200, 7);
            let input = Input::new().memory_size(200).with_memory(0, &image).with_reg(a, 0);
            diff_test(&f, &g, &input).unwrap();
        }
        diff_test(&f, &g, &training_input(a)).unwrap();
        let _ = sb;
    }

    #[test]
    fn reduces_dynamic_branches_on_trace() {
        let (f, a, sb) = workload();
        let profile = run(&f, &training_input(a)).unwrap().profile;
        let mut g = f.clone();
        let cfg = CprConfig { min_entry_count: 1, ..CprConfig::default() };
        apply_icbm(&mut g, &profile, &cfg);
        let base = run(&f, &training_input(a)).unwrap();
        let opt = run(&g, &training_input(a)).unwrap();
        assert!(
            opt.dynamic_branches < base.dynamic_branches,
            "branches: {} -> {}",
            base.dynamic_branches,
            opt.dynamic_branches
        );
        assert!(opt.dynamic_ops <= base.dynamic_ops, "irredundant on-trace code");
        let _ = sb;
    }

    #[test]
    fn taken_variation_used_for_hot_back_edge() {
        let (f, a, _sb) = workload();
        let profile = run(&f, &training_input(a)).unwrap().profile;
        let mut g = f.clone();
        let cfg = CprConfig {
            min_entry_count: 1,
            // Group all 4 branches into one block; the final back edge is
            // ~95% taken → taken variation.
            exit_weight_threshold: 1.0,
            ..CprConfig::default()
        };
        let stats = apply_icbm(&mut g, &profile, &cfg);
        assert!(stats.taken_blocks >= 1, "{stats:?}\n{g}");
        diff_test(&f, &g, &training_input(a)).unwrap();
    }

    #[test]
    fn cold_code_is_untouched() {
        let (f, a, _sb) = workload();
        let profile = run(&f, &training_input(a)).unwrap().profile;
        let mut g = f.clone();
        let cfg = CprConfig { min_entry_count: u64::MAX, speculate: false, ..CprConfig::default() };
        let stats = apply_icbm(&mut g, &profile, &cfg);
        assert_eq!(stats.cpr_blocks, 0);
        assert_eq!(f.static_op_count(), g.static_op_count());
    }

    #[test]
    fn on_trace_branch_height_shrinks() {
        use epic_machine::Machine;
        use epic_sched::{schedule_function, SchedOptions};
        let (f, a, sb) = workload();
        let profile = run(&f, &training_input(a)).unwrap().profile;
        let mut g = f.clone();
        let cfg = CprConfig { min_entry_count: 1, ..CprConfig::default() };
        apply_icbm(&mut g, &profile, &cfg);
        let m = Machine::infinite();
        let base = schedule_function(&f, &m, &SchedOptions::default());
        let opt = schedule_function(&g, &m, &SchedOptions::default());
        // The transformed on-trace hyperblock is at least as short, and the
        // infinite machine should expose a real height reduction.
        assert!(
            opt.block(sb).length <= base.block(sb).length,
            "on-trace: {} vs {}",
            opt.block(sb).length,
            base.block(sb).length
        );
    }

    #[test]
    fn stats_default_is_zeroed() {
        assert_eq!(IcbmStats::default().cpr_blocks, 0);
    }

    #[test]
    fn disabled_cpr_leaves_the_function_untouched() {
        let (f, a, _) = workload();
        let profile = run(&f, &training_input(a)).unwrap().profile;
        let mut g = f.clone();
        let cfg = CprConfig { enable: false, min_entry_count: 1, ..CprConfig::default() };
        let stats = apply_icbm(&mut g, &profile, &cfg);
        assert_eq!(stats, IcbmStats::default());
        assert_eq!(g.to_string(), f.to_string());
    }
}
