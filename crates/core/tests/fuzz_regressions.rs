//! Minimized reproducers harvested by the differential pipeline fuzzer
//! (`crates/fuzz`). Each test rebuilds the shrunken program shape that
//! exposed a real miscompile, runs the guilty stage, and differentially
//! checks it — so the bug class stays fixed. See EXPERIMENTS.md ("Fuzzing
//! the pipeline") for the workflow that produced these.

use control_cpr::{dce, match_cpr_blocks, off_trace_motion, restructure, CprConfig};
use epic_analysis::GlobalLiveness;
use epic_ir::{BlockId, CmpCond, Function, FunctionBuilder, Opcode, Operand, Profile};
use epic_interp::{diff_test, run, Input};
use epic_regions::frp_convert;

fn cpr_cfg() -> CprConfig {
    CprConfig { enable_taken_variation: false, ..CprConfig::uniform() }
}

/// Fuzz seed 18 (dce stage): a register live at a *mid-block* branch
/// target but unconditionally redefined after the branch. Whole-block kill
/// sets removed it from the block's live-in, so DCE deleted the definition
/// the taken edge still needed.
#[test]
fn dce_keeps_def_live_only_at_mid_block_exit() {
    let mut b = FunctionBuilder::new("mid_exit_live");
    let entry = b.block("entry");
    let body = b.block("body");
    let exit = b.block("exit");
    let v = b.reg();
    let x = b.reg();
    b.switch_to(exit);
    let a0 = b.movi(0);
    b.store(a0, v.into());
    b.ret();
    b.switch_to(entry);
    b.mov_to(v, Operand::Imm(7)); // dead on the fall-through path only
    b.switch_to(body);
    let (p, _q) = b.cmpp_un_uc(CmpCond::Lt, x.into(), Operand::Imm(0));
    b.branch_if(p, exit); // taken edge still reads v = 7
    b.mov_to(v, Operand::Imm(1));
    let f = b.finish();

    let mut g = f.clone();
    dce(&mut g);
    epic_ir::verify(&g).unwrap();
    for xv in [-1, 5] {
        let input = Input::new().memory_size(4).with_reg(x, xv);
        diff_test(&f, &g, &input).unwrap();
    }
    // The mov(7) must survive: it feeds the store on the taken edge.
    let movs = g.block(entry).ops.iter().filter(|o| o.opcode == Opcode::Mov).count();
    assert_eq!(movs, 1, "entry def deleted:\n{g}");
}

/// Fuzz seed 0 (frp-convert stage): one two-target `cmpp.un.uc` feeding
/// *two* branches. Converting the second branch re-guarded the compare
/// with its own complement output, so at runtime the compare nullified
/// itself, neither branch fired, and fall-through code the reference never
/// reaches executed.
#[test]
fn frp_convert_shared_compare_two_way_dispatch() {
    let mut b = FunctionBuilder::new("shared_cmpp");
    let sb = b.block("sb");
    let dead = b.block("dead");
    let other = b.block("other");
    let exit = b.block("exit");
    let x = b.reg();
    b.switch_to(exit);
    b.ret();
    b.switch_to(other);
    let d = b.movi(0);
    b.store(d, Operand::Imm(9));
    b.ret();
    b.switch_to(dead);
    // Reachable only if *neither* branch takes — impossible, since their
    // guards are complementary.
    let d = b.movi(0);
    b.store(d, Operand::Imm(-3));
    b.ret();
    b.switch_to(sb);
    let (p, q) = b.cmpp_un_uc(CmpCond::Ge, Operand::Imm(12), x.into());
    b.branch_if(p, exit);
    b.branch_if(q, other);
    let f = b.finish();

    let mut g = f.clone();
    frp_convert(&mut g);
    epic_ir::verify(&g).unwrap();
    for xv in [3, 20] {
        let input = Input::new().memory_size(4).with_reg(x, xv);
        diff_test(&f, &g, &input).unwrap();
    }
}

/// Shared helper: match the first CPR block of `sb` and restructure it.
fn restructure_first(
    f: &mut Function,
    sb: BlockId,
) -> Option<control_cpr::Restructured> {
    let cfg = cpr_cfg();
    let blocks = match_cpr_blocks(&f.block(sb).ops, &Profile::new(), &cfg, f.mem_classes());
    let cpr = blocks.iter().find(|c| c.is_nontrivial())?;
    let live = GlobalLiveness::compute(f);
    restructure(f, sb, cpr, &live)
}

/// Fuzz seed 1 (motion stage): an unguarded definition of a live-out
/// register sits *between* the CPR block's exit branches. Moving the
/// branches off-trace would make it execute speculatively before the
/// bypass, clobbering the live-out on taken paths; motion must refuse.
#[test]
fn motion_bails_on_unguarded_live_out_between_branches() {
    let mut b = FunctionBuilder::new("spec_live_out");
    let sb = b.block("sb");
    let exit = b.block("exit");
    let x = b.reg();
    let y = b.reg();
    let out = b.reg();
    b.switch_to(exit);
    b.ret();
    b.switch_to(sb);
    let (p1, _) = b.cmpp_un_uc(CmpCond::Le, x.into(), Operand::Imm(16));
    b.branch_if(p1, exit);
    b.mov_to(out, Operand::Imm(-2)); // live-out, unguarded, between branches
    let (p2, _) = b.cmpp_un_uc(CmpCond::Lt, y.into(), Operand::Imm(9));
    b.branch_if(p2, exit);
    b.ret();
    b.mark_live_out(out);
    let f = b.finish();

    let mut g = f.clone();
    let Some(r) = restructure_first(&mut g, sb) else {
        panic!("CPR block must restructure");
    };
    let live = GlobalLiveness::compute(&g);
    let moved = off_trace_motion(&mut g, &r, &live);
    assert!(!moved, "motion must refuse to speculate a live-out def:\n{g}");
    epic_ir::verify(&g).unwrap();
    for (xv, yv) in [(10, 0), (20, 0), (20, 10)] {
        let input = Input::new().memory_size(4).with_reg(x, xv).with_reg(y, yv);
        diff_test(&f, &g, &input).unwrap();
    }
}

/// Fuzz seed 17 (motion stage, root cause in restructure): a branch
/// guarded by the *complement* (`UC`) output of its compare. The lookahead
/// accumulated the un-inverted condition, so the off-trace FRP missed that
/// branch's taken path and the bypass fell through into code the reference
/// never executes.
#[test]
fn restructure_inverts_lookahead_for_complement_guarded_branch() {
    let mut b = FunctionBuilder::new("uc_guard");
    let sb = b.block("sb");
    let fall = b.block("fall");
    let t1 = b.block("t1");
    let t2 = b.block("t2");
    let x = b.reg();
    b.switch_to(t1);
    b.ret();
    b.switch_to(t2);
    let d = b.movi(0);
    b.store(d, Operand::Imm(1));
    b.ret();
    b.switch_to(fall);
    // Reachable only if both complementary branches fall through: never.
    let d = b.movi(0);
    b.store(d, Operand::Imm(7));
    b.ret();
    b.switch_to(sb);
    let (p, q) = b.cmpp_un_uc(CmpCond::Le, x.into(), Operand::Imm(0));
    b.branch_if(p, t1);
    b.branch_if(q, t2); // taken when the compare is FALSE
    let f = b.finish();

    let mut g = f.clone();
    let Some(r) = restructure_first(&mut g, sb) else {
        panic!("CPR block must restructure");
    };
    let live = GlobalLiveness::compute(&g);
    off_trace_motion(&mut g, &r, &live);
    epic_ir::verify(&g).unwrap();
    for xv in [-1, 1] {
        let input = Input::new().memory_size(4).with_reg(x, xv);
        diff_test(&f, &g, &input).unwrap();
    }
}

/// Fuzz seed 500579 (motion stage, taken variation): the final branch is
/// guarded by its compare's *complement* output, and a store guarded by
/// the *normal* output — true exactly when the branch falls through — sits
/// between the compare and the branch. In the taken variation the
/// fall-through path is off-trace, so the store must move off-trace
/// entirely; the old taken-pred heuristic kept an on-trace copy guarded by
/// the on-trace FRP, which fires exactly when the bypass takes.
#[test]
fn motion_taken_variation_moves_fall_through_store_off_trace() {
    let mut b = FunctionBuilder::new("taken_split");
    let sb = b.block("sb");
    let t1 = b.block("t1");
    let hot = b.block("hot");
    let x = b.reg();
    let y = b.reg();
    b.switch_to(t1);
    b.ret();
    b.switch_to(hot);
    b.ret();
    b.switch_to(sb);
    let (p1, _q1) = b.cmpp_un_uc(CmpCond::Lt, x.into(), Operand::Imm(0));
    b.branch_if(p1, t1); // cold
    let a = b.movi(0);
    let (p2, q2) = b.cmpp_un_uc(CmpCond::Lt, Operand::Imm(10), y.into());
    b.set_guard(Some(p2));
    b.store(a, Operand::Imm(-7)); // fires only when the final branch falls through
    b.set_guard(None);
    b.branch_if(q2, hot); // hot-taken final branch (10 < y is usually false)
    b.ret();
    let f = b.finish();

    // Profile one run that takes the final branch: predict-taken fires.
    let training = Input::new().memory_size(4).with_reg(x, 5).with_reg(y, 3);
    let profile = run(&f, &training).unwrap().profile;
    let cfg = CprConfig { min_entry_count: 1, ..CprConfig::default() };
    let mut g = f.clone();
    let blocks = match_cpr_blocks(&g.block(sb).ops, &profile, &cfg, g.mem_classes());
    let cpr = blocks.iter().find(|c| c.is_nontrivial()).expect("CPR block");
    assert!(cpr.taken_variation, "must exercise the taken variation: {cpr:?}");
    let live = GlobalLiveness::compute(&g);
    let r = restructure(&mut g, sb, cpr, &live).expect("restructures");
    let live = GlobalLiveness::compute(&g);
    off_trace_motion(&mut g, &r, &live);
    epic_ir::verify(&g).unwrap();
    for (xv, yv) in [(5, 3), (5, 20), (-1, 3)] {
        let input = Input::new().memory_size(4).with_reg(x, xv).with_reg(y, yv);
        diff_test(&f, &g, &input).unwrap();
    }
}

/// Fuzz seed 2110 (motion stage, root cause in restructure): predicate
/// reuse paired the *second* branch with the *first* compare — positions
/// out of branch order. The FRP `pinit` was inserted at the branch-order
/// first compare (wiping the earlier lookahead's accumulation) and the
/// prefix-conjunction guard assumption behind split re-guarding broke, so
/// the bypass missed taken paths. Restructure must skip such blocks.
#[test]
fn restructure_skips_out_of_order_compare_branch_pairs() {
    let mut b = FunctionBuilder::new("ooo_pairs");
    let sb = b.block("sb");
    let t1 = b.block("t1");
    let t2 = b.block("t2");
    let x = b.reg();
    let y = b.reg();
    b.switch_to(t1);
    b.ret();
    b.switch_to(t2);
    let d = b.movi(0);
    b.store(d, Operand::Imm(13));
    b.ret();
    b.switch_to(sb);
    let a = b.movi(1);
    // Compare A feeds the SECOND branch; compare B (defined later, reading
    // a load guarded by A's output) feeds the FIRST.
    let (p2, p3) = b.cmpp_un_uc(CmpCond::Gt, Operand::Imm(4), x.into());
    b.set_guard(Some(p2));
    let v = b.load(a);
    b.set_guard(None);
    let (p4, _) = b.cmpp_un_uc(CmpCond::Lt, v.into(), y.into());
    b.branch_if(p4, t1);
    b.branch_if(p3, t2);
    b.ret();
    let f = b.finish();

    let mut g = f.clone();
    let r = restructure_first(&mut g, sb);
    assert!(r.is_none(), "out-of-order compare/branch pairing must be skipped:\n{g}");
    assert_eq!(f.to_string(), g.to_string(), "skipped block must be untouched");
    epic_ir::verify(&g).unwrap();
    for (xv, yv) in [(3, 9), (9, 9), (9, -9)] {
        let input =
            Input::new().memory_size(4).with_memory(1, &[2]).with_reg(x, xv).with_reg(y, yv);
        diff_test(&f, &g, &input).unwrap();
    }
}

/// Fuzz seed 3340 (motion stage): a guarded store between the branches
/// pulls a later load into the moved set through the store→load memory
/// dependence, and the second *lookahead accumulator* reads that load — so
/// the accumulator itself lands in the moved set and its split copy would
/// be re-inserted after the bypass branch that consumes its FRPs. The
/// bypass then tests stale predicates and misses taken paths; motion must
/// refuse (restructure alone is still correct).
#[test]
fn motion_bails_when_bypass_reads_a_moved_lookahead() {
    let mut b = FunctionBuilder::new("bypass_stale_frp");
    let sb = b.block("sb");
    let t1 = b.block("t1");
    let exit = b.block("exit");
    let x = b.reg();
    let y = b.reg();
    b.switch_to(t1);
    b.ret();
    b.switch_to(exit);
    let d = b.movi(0);
    b.store(d, Operand::Imm(9));
    b.ret();
    b.switch_to(sb);
    let a0 = b.movi(1);
    let a1 = b.movi(1);
    let (p8, p16) = b.cmpp_un_uc(CmpCond::Lt, x.into(), x.into());
    b.branch_if(p8, t1);
    // Chain off the first compare's fall-through output into memory...
    b.set_guard(Some(p16));
    let (p10, _) = b.cmpp_un_uc(CmpCond::Eq, Operand::Imm(-11), y.into());
    b.set_guard(Some(p10));
    b.store(a0, Operand::Imm(0));
    b.set_guard(None);
    // ...and back out: the load may alias the moved store, and the second
    // compare (whose lookahead accumulates into the bypass FRPs) reads it.
    let v = b.load(a1);
    let (p14, _) = b.cmpp_un_uc(CmpCond::Ne, v.into(), Operand::Imm(5));
    b.branch_if(p14, exit);
    b.ret();
    let f = b.finish();

    let mut g = f.clone();
    let Some(r) = restructure_first(&mut g, sb) else {
        panic!("CPR block must restructure");
    };
    let live = GlobalLiveness::compute(&g);
    let moved = off_trace_motion(&mut g, &r, &live);
    assert!(!moved, "motion must refuse when the bypass reads moved FRPs:\n{g}");
    epic_ir::verify(&g).unwrap();
    for yv in [-11, 4] {
        let input = Input::new()
            .memory_size(4)
            .with_memory(1, &[5])
            .with_reg(x, 0)
            .with_reg(y, yv);
        diff_test(&f, &g, &input).unwrap();
    }
}

/// Fuzz seed 3891 (motion stage, taken variation): a store guarded by the
/// final branch's *taken* predicate sits between the compare and the
/// branch. The compare moves off-trace, and the split on-trace copy kept
/// its original guard — which is never recomputed on-trace, so the copy
/// silently stopped firing. The taken predicate of the final branch is
/// exactly the on-trace condition, so the copy must rewire to the on-trace
/// FRP.
#[test]
fn motion_taken_variation_rewires_final_taken_guard() {
    let mut b = FunctionBuilder::new("taken_guard_split");
    let sb = b.block("sb");
    let t1 = b.block("t1");
    let hot = b.block("hot");
    let x = b.reg();
    let y = b.reg();
    b.switch_to(t1);
    b.ret();
    b.switch_to(hot);
    b.ret();
    b.switch_to(sb);
    let a = b.movi(0);
    let (p1, q1) = b.cmpp_un_uc(CmpCond::Lt, x.into(), Operand::Imm(1));
    b.branch_if(p1, t1); // cold
    b.set_guard(Some(q1));
    let (p2, _q2) = b.cmpp_un_uc(CmpCond::Ne, Operand::Imm(4), y.into());
    b.set_guard(Some(p2));
    b.store(a, Operand::Imm(4)); // guarded by the final branch's taken pred
    b.set_guard(None);
    b.branch_if(p2, hot); // hot-taken final branch
    b.ret();
    let f = b.finish();

    // Profile one run that takes the final branch: predict-taken fires.
    let training = Input::new().memory_size(4).with_reg(x, 5).with_reg(y, 3);
    let profile = run(&f, &training).unwrap().profile;
    let cfg = CprConfig { min_entry_count: 1, ..CprConfig::default() };
    let mut g = f.clone();
    let blocks = match_cpr_blocks(&g.block(sb).ops, &profile, &cfg, g.mem_classes());
    let cpr = blocks.iter().find(|c| c.is_nontrivial()).expect("CPR block");
    assert!(cpr.taken_variation, "must exercise the taken variation: {cpr:?}");
    let live = GlobalLiveness::compute(&g);
    let r = restructure(&mut g, sb, cpr, &live).expect("restructures");
    let live = GlobalLiveness::compute(&g);
    assert!(off_trace_motion(&mut g, &r, &live), "motion must succeed:\n{g}");
    epic_ir::verify(&g).unwrap();
    // The split on-trace store is re-guarded by the on-trace FRP.
    let on_store = g
        .block(sb)
        .ops
        .iter()
        .find(|o| o.opcode == Opcode::Store)
        .expect("on-trace store copy");
    assert_eq!(on_store.guard, Some(r.on_frp), "\n{g}");
    for (xv, yv) in [(5, 3), (5, 4), (0, 3)] {
        let input = Input::new().memory_size(4).with_reg(x, xv).with_reg(y, yv);
        diff_test(&f, &g, &input).unwrap();
    }
}

/// Fuzz seed 1900 (motion stage, taken variation; found by the RISC-lite
/// differential sweep, whose unguarded ALU ops the native generator rarely
/// produces mid-chain): an *unguarded* definition of a live-out register
/// joins the moved set through a flow dependence on a guarded mid-chain
/// def. In the taken variation the split on-trace copies sit *before* the
/// bypass, so the unguarded copy fired even when control fell through to
/// the compensation block and an earlier moved branch then exited —
/// clobbering the live-out on a path where the original op never ran. The
/// copy must be re-guarded by the on-trace FRP, which is true exactly when
/// the bypass takes.
#[test]
fn motion_taken_variation_guards_unguarded_split_copy() {
    let mut b = FunctionBuilder::new("unguarded_split");
    let sb = b.block("sb");
    let t1 = b.block("t1");
    let hot = b.block("hot");
    let x = b.reg();
    let y = b.reg();
    let z = b.reg();
    let tmp = b.reg();
    let out = b.reg();
    b.switch_to(t1);
    b.ret();
    b.switch_to(hot);
    b.ret();
    b.switch_to(sb);
    let (p1, q1) = b.cmpp_un_uc(CmpCond::Lt, x.into(), Operand::Imm(0));
    b.branch_if(p1, t1); // cold early exit
    b.set_guard(Some(q1));
    b.mov_to(tmp, Operand::Imm(-148)); // moved: guarded by an internal pred
    let (p2, _q2) = b.cmpp_un_uc(CmpCond::Ne, Operand::Imm(4), y.into());
    b.set_guard(None);
    // Unguarded, reads `tmp` (so it rides the moved closure), live-out.
    b.emit(Opcode::Sub, vec![epic_ir::Dest::Reg(out)], vec![tmp.into(), z.into()]);
    b.branch_if(p2, hot); // hot-taken final branch
    b.ret();
    b.mark_live_out(out);
    let f = b.finish();

    // Profile one run that takes the final branch: predict-taken fires.
    let training = Input::new().memory_size(4).with_reg(x, 5).with_reg(y, 3);
    let profile = run(&f, &training).unwrap().profile;
    let cfg = CprConfig { min_entry_count: 1, ..CprConfig::default() };
    let mut g = f.clone();
    let blocks = match_cpr_blocks(&g.block(sb).ops, &profile, &cfg, g.mem_classes());
    let cpr = blocks.iter().find(|c| c.is_nontrivial()).expect("CPR block");
    assert!(cpr.taken_variation, "must exercise the taken variation: {cpr:?}");
    let live = GlobalLiveness::compute(&g);
    let r = restructure(&mut g, sb, cpr, &live).expect("restructures");
    let live = GlobalLiveness::compute(&g);
    assert!(off_trace_motion(&mut g, &r, &live), "motion must succeed:\n{g}");
    epic_ir::verify(&g).unwrap();
    // The only def of `out` left on-trace is the split copy; it must be
    // guarded by the on-trace FRP, not run unconditionally.
    let copy = g
        .block(sb)
        .ops
        .iter()
        .find(|o| o.defs_regs().any(|d| d == out))
        .expect("on-trace copy of the live-out def");
    assert_eq!(copy.guard, Some(r.on_frp), "\n{g}");
    // (x = -1, *) is the miscompiled path: the early branch exits, `out`
    // must keep its entry value.
    for (xv, yv) in [(5, 3), (5, 4), (-1, 3), (-1, 4)] {
        let input = Input::new().memory_size(4).with_reg(x, xv).with_reg(y, yv);
        diff_test(&f, &g, &input).unwrap();
    }
}

/// Fuzz seed 21014 (restructure stage): an operation after the final
/// branch guarded by a *taken* predicate — sequentially dead, because its
/// guard being true means the branch above exited. Rewiring it to the
/// on-trace FRP resurrected it on the fall-through path; it must rewire to
/// the off-trace FRP (false past the bypass) instead.
#[test]
fn restructure_rewires_taken_pred_uses_to_false_past_bypass() {
    let mut b = FunctionBuilder::new("taken_use");
    let sb = b.block("sb");
    let out = b.block("out");
    let x = b.reg();
    let y = b.reg();
    b.switch_to(out);
    b.ret();
    b.switch_to(sb);
    let r21 = b.mov(Operand::Imm(3));
    let (p6, p12) = b.cmpp_un_uc(CmpCond::Ge, x.into(), Operand::Imm(0));
    b.branch_if(p6, out);
    b.set_guard(Some(p12));
    let (p8, _p13) = b.cmpp_un_uc(CmpCond::Le, y.into(), Operand::Imm(0));
    b.set_guard(None);
    b.branch_if(p8, out);
    b.set_guard(Some(p8));
    b.mov_to(r21, Operand::Imm(0)); // guard true ⇒ the branch above took
    b.set_guard(None);
    b.ret();
    b.mark_live_out(r21);
    let f = b.finish();

    let mut g = f.clone();
    let Some(r) = restructure_first(&mut g, sb) else {
        panic!("CPR block must restructure");
    };
    epic_ir::verify(&g).unwrap();
    for (xv, yv) in [(1, 5), (-1, -5), (-1, 5)] {
        let input = Input::new().memory_size(4).with_reg(x, xv).with_reg(y, yv);
        diff_test(&f, &g, &input).unwrap();
    }
    // And the full phase sequence stays equivalent too.
    let live = GlobalLiveness::compute(&g);
    off_trace_motion(&mut g, &r, &live);
    epic_ir::verify(&g).unwrap();
    for (xv, yv) in [(1, 5), (-1, -5), (-1, 5)] {
        let input = Input::new().memory_size(4).with_reg(x, xv).with_reg(y, yv);
        diff_test(&f, &g, &input).unwrap();
    }
}
