//! Property test: the incremental liveness cache the ICBM driver maintains
//! is indistinguishable from recomputing `GlobalLiveness` from scratch
//! after every mutation.
//!
//! The test mirrors `apply_icbm`'s exact loop structure through the public
//! phase APIs (speculate → match → restructure → off-trace motion),
//! repairing an [`IncrementalLiveness`] with the passes' touched-block sets
//! and comparing against a from-scratch solution at each step. Any missed
//! invalidation — a block the passes edit but do not report — shows up as
//! an inequality here.

use control_cpr::{match_cpr_blocks, off_trace_motion, restructure, speculate, CprConfig};
use epic_analysis::{GlobalLiveness, IncrementalLiveness};
use epic_interp::{run, Input};
use epic_ir::{BlockId, CmpCond, Function, FunctionBuilder, Operand, Reg};
use proptest::prelude::*;

/// An FRP-converted string-scan superblock with `links` compare/branch/store
/// segments and a hot back edge — the pipeline shape ICBM consumes.
/// `guarded_stores` toggles whether the per-segment stores ride the FRP
/// chain (they do after real FRP conversion) or run unguarded.
fn chain(links: usize, guarded_stores: bool) -> (Function, Reg, BlockId) {
    let mut fb = FunctionBuilder::new("scan");
    let sb = fb.block("sb");
    let exit = fb.block("exit");
    fb.switch_to(exit);
    fb.ret();
    fb.switch_to(sb);
    let a = fb.reg();
    let mut guard = None;
    for k in 0..links as i64 {
        fb.set_guard(None);
        let addr = fb.add(a.into(), Operand::Imm(k));
        fb.set_alias_class(Some(1));
        let v = fb.load(addr);
        fb.set_alias_class(Some(2));
        fb.set_guard(guard);
        let (t, f_) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
        fb.branch_if(t, exit);
        if guarded_stores {
            fb.set_guard(Some(f_));
        } else {
            fb.set_guard(None);
        }
        let d = fb.add(addr.into(), Operand::Imm(100));
        fb.store(d, v.into());
        guard = Some(f_);
    }
    fb.set_guard(None);
    let a2 = fb.add(a.into(), Operand::Imm(links as i64));
    fb.set_alias_class(Some(1));
    let probe = fb.load(a2);
    fb.set_alias_class(None);
    fb.set_guard(guard);
    fb.mov_to(a, a2.into());
    let (cont, _stop) = fb.cmpp_un_uc(CmpCond::Ne, probe.into(), Operand::Imm(0));
    fb.branch_if(cont, sb);
    fb.set_guard(None);
    fb.ret();
    (fb.finish(), a, sb)
}

fn training_input(a: Reg, iterations: usize) -> Input {
    let mut image = vec![3i64; iterations];
    image.push(0);
    image.resize(400, 0);
    Input::new().memory_size(400).with_memory(0, &image).with_reg(a, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cache_matches_scratch_after_each_icbm_mutation(
        links in 2usize..6,
        guarded_stores in any::<bool>(),
        do_speculate in any::<bool>(),
        threshold_idx in 0usize..3,
        iterations in 20usize..80,
    ) {
        let (mut f, a, sb) = chain(links, guarded_stores);
        let profile = run(&f, &training_input(a, iterations)).unwrap().profile;
        let cfg = CprConfig {
            min_entry_count: 1,
            exit_weight_threshold: [0.2, 0.5, 1.0][threshold_idx],
            speculate: do_speculate,
            ..CprConfig::default()
        };

        // Mirror apply_icbm: speculate first, then one cache for the whole
        // function, repaired per mutation.
        if cfg.speculate {
            speculate(&mut f);
        }
        let mem_classes = f.mem_classes().clone();
        let mut cache = IncrementalLiveness::new(&f);
        prop_assert_eq!(cache.live(), &GlobalLiveness::compute(&f));

        let mut mutations = 0usize;
        let cpr_blocks = match_cpr_blocks(&f.block(sb).ops, &profile, &cfg, &mem_classes);
        for cpr in &cpr_blocks {
            if !cpr.is_nontrivial() {
                continue;
            }
            let Some(r) = restructure(&mut f, sb, cpr, cache.live()) else {
                continue;
            };
            cache.repair(&f, &r.touched_blocks());
            prop_assert_eq!(
                cache.live(),
                &GlobalLiveness::compute(&f),
                "cache diverged after restructure"
            );
            mutations += 1;
            if off_trace_motion(&mut f, &r, cache.live()) {
                cache.repair(&f, &r.touched_blocks());
                prop_assert_eq!(
                    cache.live(),
                    &GlobalLiveness::compute(&f),
                    "cache diverged after off-trace motion"
                );
                mutations += 1;
            }
        }
        // The generator must actually exercise the cache: every case has a
        // non-trivial chain, so at least one restructure must land.
        prop_assert!(mutations >= 1, "no ICBM mutation fired for links={links}");
    }
}
