//! Focused tests of the taken variation (paper §5.3) and of the pipeline
//! driver's CPR-block chaining (on-trace FRP becomes the next root).

use control_cpr::{apply_icbm, CprConfig};
use epic_interp::{diff_test, run, Input};
use epic_ir::{CmpCond, Function, FunctionBuilder, Opcode, Operand, Reg};
use epic_regions::frp_convert;

/// A loop whose back edge is ~97% taken with two rare exits — the shape
/// that triggers the taken variation.
fn hot_loop() -> (Function, Reg) {
    let mut fb = FunctionBuilder::new("hot");
    let loop_ = fb.block("loop");
    let exit = fb.block("exit");
    fb.switch_to(exit);
    fb.ret();
    fb.switch_to(loop_);
    let a = fb.reg();
    fb.set_alias_class(Some(1));
    let v = fb.load(a);
    fb.set_alias_class(None);
    let (z, f1) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
    fb.branch_if(z, exit);
    let d = fb.add(a.into(), Operand::Imm(256));
    fb.set_guard(Some(f1));
    fb.set_alias_class(Some(2));
    fb.store(d, v.into());
    fb.set_alias_class(None);
    fb.set_guard(None);
    let a2 = fb.add(a.into(), Operand::Imm(1));
    fb.set_alias_class(Some(1));
    let probe = fb.load(a2);
    fb.set_alias_class(None);
    fb.set_guard(Some(f1));
    fb.mov_to(a, a2.into());
    let (cont, _) = fb.cmpp_un_uc(CmpCond::Ne, probe.into(), Operand::Imm(0));
    fb.branch_if(cont, loop_);
    fb.set_guard(None);
    fb.ret();
    (fb.finish(), a)
}

fn training(a: Reg) -> Input {
    let mut image = vec![9i64; 100];
    image.push(0);
    Input::new().memory_size(512).with_memory(0, &image).with_reg(a, 0)
}

#[test]
fn taken_variation_fires_and_matches() {
    let (f, a) = hot_loop();
    let profile = run(&f, &training(a)).unwrap().profile;
    let mut g = f.clone();
    frp_convert(&mut g);
    let stats = apply_icbm(
        &mut g,
        &profile,
        &CprConfig { min_entry_count: 1, exit_weight_threshold: 1.0, ..CprConfig::default() },
    );
    assert_eq!(stats.taken_blocks, 1, "{stats:?}\n{g}");
    epic_ir::verify(&g).unwrap();
    diff_test(&f, &g, &training(a)).unwrap();
    // Early-exit inputs too.
    for zero_at in 0..4usize {
        let mut image = vec![5i64; 8];
        image[zero_at] = 0;
        image.resize(100, 0);
        let input = Input::new().memory_size(512).with_memory(0, &image).with_reg(a, 0);
        diff_test(&f, &g, &input).unwrap();
    }
}

#[test]
fn taken_variation_on_trace_ends_with_single_branch() {
    let (f, a) = hot_loop();
    let profile = run(&f, &training(a)).unwrap().profile;
    let mut g = f.clone();
    frp_convert(&mut g);
    apply_icbm(
        &mut g,
        &profile,
        &CprConfig { min_entry_count: 1, exit_weight_threshold: 1.0, ..CprConfig::default() },
    );
    let hot = g.entry();
    let block = g.block(hot);
    // On-trace: exactly one conditional branch — the re-guarded back edge —
    // and it is the block's last operation.
    let branches: Vec<usize> = block
        .ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.opcode == Opcode::Branch)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(branches.len(), 1, "\n{g}");
    assert_eq!(branches[0], block.ops.len() - 1, "\n{g}");
    // Its target is the loop head itself (on-trace = keep looping).
    assert_eq!(block.ops[branches[0]].branch_target(), Some(hot));
}

#[test]
fn taken_variation_reduces_branch_fetches_per_iteration() {
    let (f, a) = hot_loop();
    let before = run(&f, &training(a)).unwrap();
    let profile = before.profile.clone();
    let mut g = f.clone();
    frp_convert(&mut g);
    apply_icbm(
        &mut g,
        &profile,
        &CprConfig { min_entry_count: 1, exit_weight_threshold: 1.0, ..CprConfig::default() },
    );
    let after = run(&g, &training(a)).unwrap();
    assert!(
        after.dynamic_branches < before.dynamic_branches,
        "{} -> {}",
        before.dynamic_branches,
        after.dynamic_branches
    );
}

/// Multiple sequential CPR blocks in one hyperblock: the driver must chain
/// them (forward order, re-wired roots) and preserve semantics.
#[test]
fn chained_cpr_blocks_share_roots() {
    let mut fb = FunctionBuilder::new("chain6");
    let sb = fb.block("sb");
    let exit = fb.block("exit");
    fb.switch_to(exit);
    fb.ret();
    fb.switch_to(sb);
    let a = fb.reg();
    let mut guard = None;
    for k in 0..6i64 {
        fb.set_guard(None);
        let addr = fb.add(a.into(), Operand::Imm(k));
        fb.set_alias_class(Some(1));
        let v = fb.load(addr);
        fb.set_alias_class(None);
        fb.set_guard(guard);
        let (t, f_) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
        fb.branch_if(t, exit);
        fb.set_guard(Some(f_));
        let d = fb.add(addr.into(), Operand::Imm(64));
        fb.set_alias_class(Some(2));
        fb.store(d, v.into());
        fb.set_alias_class(None);
        guard = Some(f_);
    }
    fb.set_guard(None);
    fb.ret();
    let f = fb.finish();
    let input = Input::new().memory_size(256).with_memory(0, &[1, 2, 3, 4, 5, 6]).with_reg(a, 0);
    let profile = run(&f, &input).unwrap().profile;
    let mut g = f.clone();
    frp_convert(&mut g);
    // Force small blocks: every pair of branches becomes one CPR block.
    let stats = apply_icbm(
        &mut g,
        &profile,
        &CprConfig {
            min_entry_count: 0,
            max_branches: 2,
            exit_weight_threshold: 2.0,
            enable_taken_variation: false,
            ..CprConfig::default()
        },
    );
    assert_eq!(stats.cpr_blocks, 3, "{stats:?}\n{g}");
    epic_ir::verify(&g).unwrap();
    // Exhaustive early-exit differential testing.
    for zero_at in 0..7usize {
        let mut image = vec![2i64; 8];
        if zero_at < 6 {
            image[zero_at] = 0;
        }
        let input = Input::new().memory_size(256).with_memory(0, &image).with_reg(a, 0);
        diff_test(&f, &g, &input).unwrap();
    }
    let _ = sb;
}
