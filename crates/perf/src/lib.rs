//! # epic-perf
//!
//! The paper's performance-estimation methodology (§7) and the operation
//! count metrics of Table 3.
//!
//! > "Benchmark performance is derived using a compiler estimation
//! > approach. Code is first scheduled for each processor configuration.
//! > Then, performance is computed using static schedule lengths and
//! > profile data. The benchmark execution time is calculated as the sum
//! > across all blocks in the program of each block's schedule length
//! > weighted by its dynamic execution frequency."
//!
//! [`estimate_cycles`] implements exactly that, generalized by the
//! machine's [`Frontend`] cost model: a block's cost is its schedule
//! length or its fetch-limited length, whichever is larger, and every
//! taken control transfer is charged the misprediction penalty. The
//! paper's ideal front end (zero penalty, unlimited fetch) reduces to the
//! quote above exactly. [`OpCounts`] captures the static/dynamic total and
//! branch operation counts whose before/after ratios Table 3 reports, and
//! [`Speedup`]/[`CountRatios`] package the comparisons.
//!
//! All cycle arithmetic is overflow-safe: [`try_weighted_cycles`] reports
//! a structured [`CycleOverflow`] instead of wrapping around, and the
//! plain entry points saturate at `u64::MAX` — the same value the replay
//! oracle's saturating event accumulation converges to, so estimate ==
//! replay holds even at the boundary.

use epic_interp::{run, Input, Outcome, Trap};
use epic_ir::{BlockId, Function, Profile};
use epic_machine::{Frontend, Machine};
use epic_sched::{schedule_function, SchedOptions, ScheduledFunction};

/// The estimated cycle count does not fit in `u64`.
///
/// Profile counts and schedule lengths are individually modest, but their
/// weighted sum over a corpus-scale function can exceed 64 bits; wrapping
/// would silently report a tiny cycle count for the largest programs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleOverflow;

impl std::fmt::Display for CycleOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "estimated cycle count overflows u64")
    }
}

impl std::error::Error for CycleOverflow {}

/// Cost in cycles of one entered block under `frontend`: the schedule
/// length, stretched to the fetch-limited length when the front end
/// cannot supply the block's operations fast enough.
///
/// Both the estimator and the replay oracle compute block cost through
/// this one function, from the same static data, so the two sides cannot
/// disagree per block. A layout block without a schedule contributes zero
/// cycles rather than panicking; `epic-schedcheck` reports the gap as a
/// `MissingBlock` violation.
pub fn block_cycles(
    func: &Function,
    sched: &ScheduledFunction,
    block: BlockId,
    frontend: &Frontend,
) -> u64 {
    let Some(s) = sched.try_block(block) else { return 0 };
    let ops = func.try_block(block).map_or(0, |b| b.ops.len());
    (s.length.max(0) as u64).max(frontend.fetch_cycles(ops))
}

/// Estimated execution time of `func` on `machine`: Σ over blocks of
/// block cost × entry frequency, plus the machine front end's
/// misprediction penalty per taken control transfer. Saturates at
/// `u64::MAX` (see [`try_weighted_cycles`]).
///
/// `profile` must have been collected on this same function (block ids must
/// match).
pub fn estimate_cycles(func: &Function, profile: &Profile, machine: &Machine) -> u64 {
    let sched = schedule_function(func, machine, &SchedOptions::default());
    weighted_cycles_with(func, profile, &sched, &machine.frontend())
}

/// Like [`estimate_cycles`] with an externally produced schedule and the
/// paper's ideal front end.
pub fn weighted_cycles(func: &Function, profile: &Profile, sched: &ScheduledFunction) -> u64 {
    weighted_cycles_with(func, profile, sched, &Frontend::ideal())
}

/// Like [`try_weighted_cycles`], but saturating at `u64::MAX` instead of
/// reporting overflow. Every term is non-negative, so the saturated value
/// is exactly `min(true total, u64::MAX)` — the same quantity an
/// event-by-event saturating accumulation (the replay oracle) produces.
pub fn weighted_cycles_with(
    func: &Function,
    profile: &Profile,
    sched: &ScheduledFunction,
    frontend: &Frontend,
) -> u64 {
    try_weighted_cycles(func, profile, sched, frontend).unwrap_or(u64::MAX)
}

/// The front-end-aware weighted cycle estimate, with checked arithmetic.
///
/// # Errors
///
/// Returns [`CycleOverflow`] when the true total exceeds `u64::MAX`
/// (wraparound would otherwise report a tiny count for the largest
/// profiles).
pub fn try_weighted_cycles(
    func: &Function,
    profile: &Profile,
    sched: &ScheduledFunction,
    frontend: &Frontend,
) -> Result<u64, CycleOverflow> {
    let mut total = 0u64;
    for &b in &func.layout {
        let term = profile
            .entry_count(b)
            .checked_mul(block_cycles(func, sched, b, frontend))
            .ok_or(CycleOverflow)?;
        total = total.checked_add(term).ok_or(CycleOverflow)?;
    }
    if frontend.mispredict_penalty > 0 {
        let mut taken = 0u64;
        for &n in profile.branch_taken.values() {
            taken = taken.checked_add(n).ok_or(CycleOverflow)?;
        }
        let penalty = taken
            .checked_mul(frontend.mispredict_penalty as u64)
            .ok_or(CycleOverflow)?;
        total = total.checked_add(penalty).ok_or(CycleOverflow)?;
    }
    Ok(total)
}

/// Static and dynamic operation counts of one compiled function on one
/// training input (the measurements behind Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCounts {
    /// Static operations in the layout (`S tot`).
    pub static_ops: usize,
    /// Static branch operations (`S br`).
    pub static_branches: usize,
    /// Dynamic (fetched) operations (`D tot`).
    pub dynamic_ops: u64,
    /// Dynamic branch operations (`D br`).
    pub dynamic_branches: u64,
}

/// Profiles `func` on `input`, returning its execution profile and counts.
///
/// # Errors
///
/// Propagates any interpreter [`Trap`].
pub fn profile_and_count(func: &Function, input: &Input) -> Result<(Profile, OpCounts), Trap> {
    let Outcome { profile, dynamic_ops, dynamic_branches, .. } = run(func, input)?;
    let counts = OpCounts {
        static_ops: func.static_op_count(),
        static_branches: func.static_branch_count(),
        dynamic_ops,
        dynamic_branches,
    };
    Ok((profile, counts))
}

/// A baseline-vs-optimized cycle comparison on one machine.
#[derive(Clone, Debug, PartialEq)]
pub struct Speedup {
    /// Machine name.
    pub machine: String,
    /// Baseline estimated cycles.
    pub baseline_cycles: u64,
    /// Height-reduced (control CPR) estimated cycles.
    pub optimized_cycles: u64,
}

impl Speedup {
    /// `baseline / optimized` — the quantity Table 2 reports.
    pub fn ratio(&self) -> f64 {
        if self.optimized_cycles == 0 {
            return 1.0;
        }
        self.baseline_cycles as f64 / self.optimized_cycles as f64
    }
}

/// The four operation-count ratios of Table 3
/// (height-reduced / baseline).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CountRatios {
    /// `S tot`: static total operations.
    pub static_total: f64,
    /// `S br`: static branches.
    pub static_branches: f64,
    /// `D tot`: dynamic total operations.
    pub dynamic_total: f64,
    /// `D br`: dynamic branches.
    pub dynamic_branches: f64,
}

impl CountRatios {
    /// Computes the ratios of `optimized` to `baseline`.
    pub fn of(baseline: &OpCounts, optimized: &OpCounts) -> CountRatios {
        let r = |a: f64, b: f64| if b == 0.0 { 1.0 } else { a / b };
        CountRatios {
            static_total: r(optimized.static_ops as f64, baseline.static_ops as f64),
            static_branches: r(
                optimized.static_branches as f64,
                baseline.static_branches as f64,
            ),
            dynamic_total: r(optimized.dynamic_ops as f64, baseline.dynamic_ops as f64),
            dynamic_branches: r(
                optimized.dynamic_branches as f64,
                baseline.dynamic_branches as f64,
            ),
        }
    }
}

/// Geometric mean of a sequence of positive ratios (used for the
/// `Gmean` rows of both tables).
///
/// Degenerate inputs are handled explicitly rather than leaking through the
/// log-sum: non-finite and non-positive values (a zero-cycle estimate
/// produces a `0.0` or `inf` ratio upstream) carry no signal and are
/// skipped. An empty sequence — or one where every value was skipped —
/// yields the neutral ratio `1.0`.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        if !v.is_finite() || v <= 0.0 {
            continue;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{FunctionBuilder, Operand};

    fn simple() -> (Function, epic_ir::BlockId) {
        let mut b = FunctionBuilder::new("s");
        let e = b.block("e");
        b.switch_to(e);
        let x = b.movi(1);
        let y = b.add(x.into(), Operand::Imm(2));
        let d = b.movi(0);
        b.store(d, y.into());
        b.ret();
        (b.finish(), e)
    }

    #[test]
    fn cycles_are_weighted_by_frequency() {
        let (f, e) = simple();
        let mut profile = Profile::new();
        for _ in 0..10 {
            profile.record_block_entry(e);
        }
        let one = estimate_cycles(&f, &profile, &Machine::sequential());
        let mut profile2 = Profile::new();
        for _ in 0..20 {
            profile2.record_block_entry(e);
        }
        let two = estimate_cycles(&f, &profile2, &Machine::sequential());
        assert_eq!(two, 2 * one);
        assert!(one > 0);
    }

    #[test]
    fn wider_machines_are_no_slower() {
        let (f, e) = simple();
        let mut profile = Profile::new();
        profile.record_block_entry(e);
        let seq = estimate_cycles(&f, &profile, &Machine::sequential());
        let wide = estimate_cycles(&f, &profile, &Machine::wide());
        assert!(wide <= seq);
    }

    #[test]
    fn profile_and_count_measures_dynamics() {
        let (f, _e) = simple();
        let (profile, counts) = profile_and_count(&f, &Input::new().memory_size(4)).unwrap();
        assert_eq!(counts.static_ops, 5);
        assert_eq!(counts.static_branches, 1); // ret
        assert_eq!(counts.dynamic_ops, 5);
        assert_eq!(counts.dynamic_branches, 1);
        assert_eq!(profile.entry_count(f.entry()), 1);
    }

    #[test]
    fn weighted_cycles_tolerates_missing_blocks() {
        // Regression: a schedule missing a layout block used to panic in
        // `ScheduledFunction::block`; it must now contribute zero cycles.
        let (f, e) = simple();
        let mut profile = Profile::new();
        profile.record_block_entry(e);
        let full = epic_sched::schedule_function(&f, &Machine::wide(), &SchedOptions::default());
        let expected = weighted_cycles(&f, &profile, &full);
        assert!(expected > 0);
        let mut partial = full.clone();
        partial.remove_block(e);
        assert_eq!(weighted_cycles(&f, &profile, &partial), 0);
    }

    #[test]
    fn ideal_frontend_reproduces_the_paper_estimate() {
        let (f, e) = simple();
        let mut profile = Profile::new();
        for _ in 0..10 {
            profile.record_block_entry(e);
        }
        let m = Machine::medium();
        assert!(m.frontend().is_ideal());
        let sched = epic_sched::schedule_function(&f, &m, &SchedOptions::default());
        assert_eq!(
            weighted_cycles_with(&f, &profile, &sched, &Frontend::ideal()),
            weighted_cycles(&f, &profile, &sched)
        );
        assert_eq!(estimate_cycles(&f, &profile, &m), weighted_cycles(&f, &profile, &sched));
    }

    #[test]
    fn mispredict_penalty_charges_taken_transfers() {
        let (f, e) = simple();
        let (profile, _) = profile_and_count(&f, &Input::new().memory_size(4)).unwrap();
        assert_eq!(profile.entry_count(e), 1);
        let m = Machine::medium();
        let base = estimate_cycles(&f, &profile, &m);
        let fe = Frontend { mispredict_penalty: 8, fetch_width: 0 };
        let with = estimate_cycles(&f, &profile, &m.clone().with_frontend(fe));
        // One taken transfer (the ret) → exactly one penalty charged.
        assert_eq!(with, base + 8);
    }

    #[test]
    fn fetch_width_stretches_fetch_limited_blocks() {
        let (f, e) = simple(); // 5 ops in one block
        let mut profile = Profile::new();
        profile.record_block_entry(e);
        let wide = Machine::wide();
        let base = estimate_cycles(&f, &profile, &wide);
        // One op per cycle to fetch: a 5-op block needs ≥ 5 cycles.
        let fe = Frontend { mispredict_penalty: 0, fetch_width: 1 };
        let with = estimate_cycles(&f, &profile, &wide.clone().with_frontend(fe));
        assert!(with >= 5, "fetch-limited length must dominate: {with}");
        assert!(with >= base);
        // A schedule already longer than the fetch time is not stretched.
        let seq = estimate_cycles(&f, &profile, &Machine::sequential());
        let seq_fe = estimate_cycles(
            &f,
            &profile,
            &Machine::sequential().with_frontend(fe),
        );
        assert_eq!(seq, seq_fe, "sequential schedule is never fetch-limited at width 1");
    }

    #[test]
    fn overflow_reports_structured_error_instead_of_wrapping() {
        // Regression: entry_count × schedule length used to be unchecked
        // `u64` arithmetic; near the boundary it wrapped to a tiny count.
        let (f, e) = simple();
        let sched = epic_sched::schedule_function(&f, &Machine::sequential(), &SchedOptions::default());
        let len = sched.try_block(e).unwrap().length.max(0) as u64;
        assert!(len >= 2);
        let mut profile = Profile::new();
        profile.block_entries.insert(e, u64::MAX / 2 + 1); // len * count > u64::MAX
        let fe = Frontend::ideal();
        assert_eq!(try_weighted_cycles(&f, &profile, &sched, &fe), Err(CycleOverflow));
        assert_eq!(weighted_cycles(&f, &profile, &sched), u64::MAX, "saturates, never wraps");
        // Just below the boundary the checked and saturating paths agree.
        let mut profile = Profile::new();
        profile.block_entries.insert(e, u64::MAX / len);
        let want = (u64::MAX / len) * len;
        assert_eq!(try_weighted_cycles(&f, &profile, &sched, &fe), Ok(want));
        assert_eq!(weighted_cycles(&f, &profile, &sched), want);
        assert!(!CycleOverflow.to_string().is_empty());
    }

    #[test]
    fn penalty_overflow_is_caught_too() {
        let (f, e) = simple();
        let sched = epic_sched::schedule_function(&f, &Machine::sequential(), &SchedOptions::default());
        let ret_id = f.block(e).ops.last().unwrap().id;
        let mut profile = Profile::new();
        profile.branch_taken.insert(ret_id, u64::MAX / 2);
        let fe = Frontend { mispredict_penalty: 3, fetch_width: 0 };
        assert_eq!(try_weighted_cycles(&f, &profile, &sched, &fe), Err(CycleOverflow));
        assert_eq!(weighted_cycles_with(&f, &profile, &sched, &fe), u64::MAX);
    }

    #[test]
    fn speedup_ratio() {
        let s = Speedup {
            machine: "medium".into(),
            baseline_cycles: 150,
            optimized_cycles: 100,
        };
        assert!((s.ratio() - 1.5).abs() < 1e-12);
        let degenerate = Speedup { machine: "x".into(), baseline_cycles: 5, optimized_cycles: 0 };
        assert_eq!(degenerate.ratio(), 1.0);
    }

    #[test]
    fn count_ratios() {
        let base = OpCounts {
            static_ops: 100,
            static_branches: 10,
            dynamic_ops: 1000,
            dynamic_branches: 100,
        };
        let opt = OpCounts {
            static_ops: 110,
            static_branches: 11,
            dynamic_ops: 900,
            dynamic_branches: 40,
        };
        let r = CountRatios::of(&base, &opt);
        assert!((r.static_total - 1.1).abs() < 1e-12);
        assert!((r.static_branches - 1.1).abs() < 1e-12);
        assert!((r.dynamic_total - 0.9).abs() < 1e-12);
        assert!((r.dynamic_branches - 0.4).abs() < 1e-12);
    }

    #[test]
    fn geomean_properties() {
        assert_eq!(geomean([]), 1.0);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_skips_degenerate_values() {
        // Zero-cycle ratios (0.0, inf) and NaN carry no signal: skipped.
        assert!((geomean([2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([2.0, f64::INFINITY, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([2.0, f64::NAN, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean([4.0, -1.0]) - 4.0).abs() < 1e-12);
        // All values degenerate → neutral, never NaN.
        assert_eq!(geomean([0.0, f64::NAN]), 1.0);
    }
}

#[cfg(test)]
mod integration_style_tests {
    use super::*;
    use epic_ir::{CmpCond, FunctionBuilder, Operand};

    /// Cycles must include compensation blocks weighted by how often the
    /// off-trace path actually ran.
    #[test]
    fn compensation_block_time_is_charged() {
        // Block A (hot) conditionally branches to block C (cold-ish).
        let mut b = FunctionBuilder::new("w");
        let a_blk = b.block("a");
        let c_blk = b.block("c");
        b.switch_to(a_blk);
        let x = b.movi(1);
        let (t, _) = b.cmpp_un_uc(CmpCond::Eq, x.into(), Operand::Imm(1));
        b.branch_if(t, c_blk);
        b.ret();
        b.switch_to(c_blk);
        let d = b.movi(0);
        b.store(d, Operand::Imm(1));
        b.ret();
        let f = b.finish();
        let (profile, _) = profile_and_count(&f, &Input::new().memory_size(4)).unwrap();
        // Both blocks entered once.
        assert_eq!(profile.entry_count(a_blk), 1);
        assert_eq!(profile.entry_count(c_blk), 1);
        let total = estimate_cycles(&f, &profile, &Machine::sequential());
        // Sequential: every op costs one cycle somewhere; both blocks count.
        assert!(total as usize >= f.static_op_count());
    }

    /// A block that is never entered contributes zero cycles regardless of
    /// its size.
    #[test]
    fn unexecuted_blocks_cost_nothing() {
        let mut b = FunctionBuilder::new("w");
        let a_blk = b.block("a");
        let dead = b.block("dead");
        b.switch_to(a_blk);
        b.ret();
        b.switch_to(dead);
        for _ in 0..32 {
            b.movi(1);
        }
        b.ret();
        let f = b.finish();
        let (profile, _) = profile_and_count(&f, &Input::new()).unwrap();
        let cycles = estimate_cycles(&f, &profile, &Machine::sequential());
        assert_eq!(cycles, 1, "only the ret of the entered block counts");
    }
}
