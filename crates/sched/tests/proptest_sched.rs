//! Property tests of the list scheduler: every schedule it emits must
//! respect all dependence-edge latencies and never oversubscribe any
//! functional unit in any cycle, on randomly generated predicated programs.

use epic_analysis::{DepGraph, DepOptions, PredFacts};
use epic_ir::{CmpCond, FunctionBuilder, Opcode, Operand, UnitClass};
use epic_machine::Machine;
use epic_sched::schedule_block;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum GenOp {
    Arith(u8, i64),
    Float(u8),
    Load(u8),
    Store(u8),
    CmppAndGuarded(i64),
    BranchOut,
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        4 => (0u8..4, -5i64..6).prop_map(|(k, i)| GenOp::Arith(k, i)),
        1 => (0u8..2).prop_map(GenOp::Float),
        2 => (0u8..8).prop_map(GenOp::Load),
        2 => (0u8..8).prop_map(GenOp::Store),
        2 => (-3i64..4).prop_map(GenOp::CmppAndGuarded),
        1 => Just(GenOp::BranchOut),
    ]
}

fn build(ops: &[GenOp]) -> (epic_ir::Function, epic_ir::BlockId) {
    let mut fb = FunctionBuilder::new("gen");
    let b = fb.block("b");
    let out = fb.block("out");
    fb.switch_to(out);
    fb.ret();
    fb.switch_to(b);
    let mut acc = fb.movi(3);
    for g in ops {
        match g {
            GenOp::Arith(k, i) => {
                let s = Operand::Imm(*i);
                acc = match k % 4 {
                    0 => fb.add(acc.into(), s),
                    1 => fb.sub(acc.into(), s),
                    2 => fb.mul(acc.into(), s),
                    _ => fb.xor(acc.into(), s),
                };
            }
            GenOp::Float(k) => {
                acc = if k % 2 == 0 {
                    fb.fadd(acc.into(), Operand::Imm(2))
                } else {
                    fb.fmul(acc.into(), Operand::Imm(2))
                };
            }
            GenOp::Load(a) => {
                let addr = fb.movi(*a as i64);
                let v = fb.load(addr);
                acc = fb.add(acc.into(), v.into());
            }
            GenOp::Store(a) => {
                let addr = fb.movi(*a as i64);
                fb.store(addr, acc.into());
            }
            GenOp::CmppAndGuarded(t) => {
                let p = fb.cmpp_un(CmpCond::Gt, acc.into(), Operand::Imm(*t));
                let d = fb.movi(20);
                fb.set_guard(Some(p));
                fb.store(d, acc.into());
                fb.set_guard(None);
            }
            GenOp::BranchOut => {
                let (tk, _) = fb.cmpp_un_uc(CmpCond::Lt, acc.into(), Operand::Imm(0));
                fb.branch_if(tk, out);
            }
        }
    }
    fb.ret();
    (fb.finish(), b)
}

fn validate(machine: &Machine, ops: &[epic_ir::Op]) -> Result<(), TestCaseError> {
    let mut facts = PredFacts::compute(ops);
    let latency = |o: &epic_ir::Op| machine.latency_of(o);
    let dep_opts = DepOptions {
        branch_latency: machine.branch_latency() as i32,
        ..DepOptions::default()
    };
    let graph = DepGraph::build(ops, &mut facts, &latency, &dep_opts, None);
    let s = schedule_block(ops, &graph, machine);

    // 1. All ops scheduled at non-negative cycles.
    prop_assert_eq!(s.cycles.len(), ops.len());
    prop_assert!(s.cycles.iter().all(|&c| c >= 0));

    // 2. Every dependence edge's latency is honored.
    for e in graph.edges() {
        prop_assert!(
            s.cycles[e.to] >= s.cycles[e.from] + e.latency as i64,
            "edge {:?} violated: {} -> {}",
            e,
            s.cycles[e.from],
            s.cycles[e.to]
        );
    }

    // 3. No unit class is oversubscribed in any cycle.
    let mut usage: HashMap<(i64, Option<UnitClass>), u32> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        match machine.widths() {
            None => *usage.entry((s.cycles[i], None)).or_insert(0) += 1,
            Some(_) => {
                *usage.entry((s.cycles[i], Some(op.opcode.unit_class()))).or_insert(0) += 1
            }
        }
    }
    for ((cycle, class), n) in usage {
        let limit = match (machine.widths(), class) {
            (None, _) => 1,
            (Some(w), Some(c)) => w.of(c),
            (Some(_), None) => unreachable!("class recorded for wide machines"),
        };
        prop_assert!(n <= limit, "cycle {cycle} class {class:?}: {n} > {limit}");
    }

    // 4. Length covers every op's completion.
    for (i, op) in ops.iter().enumerate() {
        prop_assert!(s.length >= s.cycles[i] + machine.latency_of(op) as i64);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Schedules are valid on every machine model, including one with
    /// exposed branch latency 3.
    #[test]
    fn schedules_are_valid(gen in prop::collection::vec(op_strategy(), 1..40)) {
        let (f, b) = build(&gen);
        epic_ir::verify(&f).expect("generated program verifies");
        let ops = &f.block(b).ops;
        for m in Machine::paper_suite() {
            validate(&m, ops)?;
        }
        validate(&Machine::medium().with_branch_latency(3), ops)?;
    }

    /// Wider machines never produce longer schedules for the same block.
    #[test]
    fn width_monotonicity(gen in prop::collection::vec(op_strategy(), 1..32)) {
        let (f, b) = build(&gen);
        let ops = &f.block(b).ops;
        let mut lengths = Vec::new();
        for m in [Machine::sequential(), Machine::narrow(), Machine::medium(), Machine::wide(), Machine::infinite()] {
            let mut facts = PredFacts::compute(ops);
            let latency = |o: &epic_ir::Op| m.latency_of(o);
            let graph = DepGraph::build(ops, &mut facts, &latency, &DepOptions::default(), None);
            lengths.push(schedule_block(ops, &graph, &m).length);
        }
        // sequential >= narrow >= medium >= wide >= infinite (list
        // scheduling is greedy, but with identical priorities and a DAG the
        // monotone resource axes hold for these nested machines).
        for w in lengths.windows(2) {
            prop_assert!(w[0] >= w[1], "{lengths:?}");
        }
    }

    /// The branch chain dominates on the infinite machine: k dependent
    /// branches need at least k cycles.
    #[test]
    fn branch_chain_lower_bound(k in 1usize..8) {
        let mut fb = FunctionBuilder::new("chain");
        let b = fb.block("b");
        let out = fb.block("out");
        fb.switch_to(out);
        fb.ret();
        fb.switch_to(b);
        let x = fb.movi(1);
        for i in 0..k {
            let p = fb.cmpp_un(CmpCond::Eq, x.into(), Operand::Imm(i as i64));
            fb.branch_if(p, out);
        }
        fb.ret();
        let f = fb.finish();
        let ops = &f.block(b).ops;
        let m = Machine::infinite();
        let mut facts = PredFacts::compute(ops);
        let latency = |o: &epic_ir::Op| m.latency_of(o);
        let graph = DepGraph::build(ops, &mut facts, &latency, &DepOptions::default(), None);
        let s = schedule_block(ops, &graph, &m);
        let branch_cycles: Vec<i64> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.opcode == Opcode::Branch)
            .map(|(i, _)| s.cycles[i])
            .collect();
        // Unpredicated (mutually non-disjoint) branches are serialized.
        for w in branch_cycles.windows(2) {
            prop_assert!(w[1] > w[0], "{branch_cycles:?}");
        }
    }
}
