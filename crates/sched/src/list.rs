//! The per-block list scheduler.

use epic_analysis::DepGraph;
use epic_ir::{Op, UnitClass};
use epic_machine::Machine;

/// The schedule of one block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Issue cycle of each op, indexed by position in the block.
    pub cycles: Vec<i64>,
    /// Schedule length in cycles: the number of cycles the block occupies
    /// (`max(issue + latency)` over all ops, at least 1 for non-empty
    /// blocks).
    pub length: i64,
}

impl Schedule {
    /// An empty schedule (for empty blocks).
    pub fn empty() -> Schedule {
        Schedule { cycles: Vec::new(), length: 0 }
    }
}

/// List-schedules the ops of one block.
///
/// Priorities are longest-path-to-exit through the dependence graph
/// (critical-path scheduling). Resources are the machine's per-class issue
/// widths; the *sequential* machine issues one op of any class per cycle.
/// Negative edge latencies (availability constraints relative to branch
/// take-time) are honored as minimum cycle distances.
pub fn schedule_block(ops: &[Op], graph: &DepGraph, machine: &Machine) -> Schedule {
    let n = ops.len();
    if n == 0 {
        return Schedule::empty();
    }

    // Priority: longest path from each op to any sink, counting latencies.
    let mut prio = vec![0i64; n];
    for i in (0..n).rev() {
        let lat = machine.latency_of(&ops[i]) as i64;
        prio[i] = lat;
        for e in graph.succs(i) {
            prio[i] = prio[i].max(e.latency as i64 + prio[e.to]);
        }
    }

    let mut unscheduled = n;
    let mut cycles = vec![i64::MIN; n];
    let mut n_preds_left: Vec<usize> = (0..n).map(|i| graph.preds(i).count()).collect();
    // Earliest cycle each op may issue, tightened as predecessors schedule.
    let mut earliest = vec![0i64; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| n_preds_left[i] == 0).collect();

    let mut cycle = 0i64;
    // Per-cycle resource usage.
    let classes = [UnitClass::Int, UnitClass::Float, UnitClass::Mem, UnitClass::Branch];
    let mut used = [0u32; 4];
    let mut used_total = 0u32;
    let class_index = |c: UnitClass| classes.iter().position(|&x| x == c).expect("all classes");

    while unscheduled > 0 {
        used = [0, 0, 0, 0];
        used_total = 0;
        loop {
            // Pick the highest-priority ready op that fits this cycle.
            let mut best: Option<usize> = None;
            for (slot, &i) in ready.iter().enumerate() {
                if earliest[i] > cycle {
                    continue;
                }
                let fits = match machine.widths() {
                    None => used_total < 1,
                    Some(w) => {
                        let ci = class_index(ops[i].opcode.unit_class());
                        used[ci] < w.of(ops[i].opcode.unit_class())
                    }
                };
                if !fits {
                    continue;
                }
                match best {
                    Some(b) if (prio[ready[b]], std::cmp::Reverse(ready[b])) >= (prio[i], std::cmp::Reverse(i)) => {}
                    _ => best = Some(slot),
                }
            }
            let Some(slot) = best else { break };
            let i = ready.swap_remove(slot);
            cycles[i] = cycle;
            unscheduled -= 1;
            match machine.widths() {
                None => used_total += 1,
                Some(_) => {
                    let ci = class_index(ops[i].opcode.unit_class());
                    used[ci] += 1;
                }
            }
            for e in graph.succs(i) {
                earliest[e.to] = earliest[e.to].max(cycle + e.latency as i64);
                n_preds_left[e.to] -= 1;
                if n_preds_left[e.to] == 0 {
                    ready.push(e.to);
                }
            }
        }
        cycle += 1;
    }
    let _ = (used, used_total);

    let length = (0..n)
        .map(|i| cycles[i] + machine.latency_of(&ops[i]) as i64)
        .max()
        .unwrap_or(0)
        .max(1);
    Schedule { cycles, length }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_analysis::{DepOptions, PredFacts};
    use epic_ir::{FunctionBuilder, Operand};

    #[test]
    fn empty_block() {
        let s = schedule_block(&[], &empty_graph(), &Machine::wide());
        assert_eq!(s, Schedule::empty());
    }

    fn empty_graph() -> DepGraph {
        let mut facts = PredFacts::compute(&[]);
        DepGraph::build(&[], &mut facts, &|_| 1, &DepOptions::default(), None)
    }

    #[test]
    fn all_ops_get_cycles() {
        let mut b = FunctionBuilder::new("t");
        let e = b.block("e");
        b.switch_to(e);
        let x = b.movi(1);
        let y = b.add(x.into(), Operand::Imm(2));
        let _ = b.mul(y.into(), Operand::Imm(3));
        b.ret();
        let f = b.finish();
        let ops = &f.block(e).ops;
        let machine = Machine::medium();
        let mut facts = PredFacts::compute(ops);
        let lat = |o: &Op| machine.latency_of(o);
        let g = DepGraph::build(ops, &mut facts, &lat, &DepOptions::default(), None);
        let s = schedule_block(ops, &g, &machine);
        assert_eq!(s.cycles.len(), ops.len());
        assert!(s.cycles.iter().all(|&c| c >= 0));
        // Flow constraints hold.
        for e in g.edges() {
            assert!(
                s.cycles[e.to] >= s.cycles[e.from] + e.latency as i64,
                "edge {e:?} violated: {:?}",
                s.cycles
            );
        }
        // mul must wait for add (1) which waits for mov (1); mul latency 3.
        assert_eq!(s.length, s.cycles[2] + 3);
    }

    #[test]
    fn length_is_at_least_one() {
        let mut b = FunctionBuilder::new("t");
        let e = b.block("e");
        b.switch_to(e);
        b.ret();
        let f = b.finish();
        let ops = &f.block(e).ops;
        let machine = Machine::wide();
        let mut facts = PredFacts::compute(ops);
        let lat = |o: &Op| machine.latency_of(o);
        let g = DepGraph::build(ops, &mut facts, &lat, &DepOptions::default(), None);
        let s = schedule_block(ops, &g, &machine);
        assert!(s.length >= 1);
    }
}
