//! # epic-sched
//!
//! A cycle-based EPIC list scheduler, standing in for the Elcor
//! superblock/hyperblock scheduler the paper uses (§5.4, §7).
//!
//! Each block (superblock / hyperblock / compensation block) is scheduled
//! independently against a [`Machine`](epic_machine::Machine) description.
//! Dependence information comes from [`epic_analysis::DepGraph`], which the
//! scheduler builds with exit liveness derived from a whole-function
//! liveness analysis. All of the paper's predicate-aware freedoms —
//! reordering and overlapping of disjointly-guarded branches, commutative
//! wired-and/wired-or accumulation — are inherited from the dependence
//! graph; the scheduler itself only enforces resources and edge latencies.
//!
//! ```
//! use epic_ir::{FunctionBuilder, Operand};
//! use epic_machine::Machine;
//! use epic_sched::{schedule_function, SchedOptions};
//!
//! let mut b = FunctionBuilder::new("f");
//! let e = b.block("e");
//! b.switch_to(e);
//! let x = b.movi(1);
//! let y = b.movi(2);
//! let _ = b.add(x.into(), y.into());
//! b.ret();
//! let f = b.finish();
//! let sched = schedule_function(&f, &Machine::wide(), &SchedOptions::default());
//! // movs issue in cycle 0 together; add in cycle 1; ret can overlap.
//! assert!(sched.block(e).length <= 3);
//! ```

mod list;

pub use list::{schedule_block, Schedule};

use std::collections::{HashMap, HashSet};

use epic_analysis::{DepGraph, DepOptions, ExitLiveness, GlobalLiveness, PredFacts};
use epic_ir::{BlockId, Function, Opcode};
use epic_machine::Machine;

/// Options for function scheduling.
#[derive(Clone, Copy, Debug)]
pub struct SchedOptions {
    /// Enable predicate-based dependence relaxation (on by default;
    /// disabling models a predicate-unaware scheduler, for ablations).
    pub pred_relaxation: bool,
}

impl Default for SchedOptions {
    fn default() -> Self {
        SchedOptions { pred_relaxation: true }
    }
}

/// Schedules for every block of a function.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduledFunction {
    schedules: HashMap<BlockId, Schedule>,
}

impl ScheduledFunction {
    /// Creates an empty schedule set (no blocks).
    pub fn new() -> ScheduledFunction {
        ScheduledFunction::default()
    }

    /// The schedule of one block.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not part of the scheduled layout. Prefer
    /// [`ScheduledFunction::try_block`] when the block may be absent.
    pub fn block(&self, block: BlockId) -> &Schedule {
        &self.schedules[&block]
    }

    /// The schedule of one block, or `None` when `block` was not part of
    /// the scheduled layout (e.g. a detached compensation block).
    pub fn try_block(&self, block: BlockId) -> Option<&Schedule> {
        self.schedules.get(&block)
    }

    /// Inserts or replaces the schedule of one block.
    pub fn set_block(&mut self, block: BlockId, schedule: Schedule) {
        self.schedules.insert(block, schedule);
    }

    /// Removes the schedule of one block, returning it if present.
    pub fn remove_block(&mut self, block: BlockId) -> Option<Schedule> {
        self.schedules.remove(&block)
    }

    /// Iterates over `(block, schedule)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Schedule)> + '_ {
        self.schedules.iter().map(|(&b, s)| (b, s))
    }
}

/// Schedules every block of `func` for `machine`.
///
/// Exit liveness (what must be available when each exit branch takes) is
/// derived from a whole-function liveness analysis, so values only used
/// off-trace do not constrain the on-trace schedule more than necessary.
pub fn schedule_function(
    func: &Function,
    machine: &Machine,
    opts: &SchedOptions,
) -> ScheduledFunction {
    schedule_function_suite(func, std::slice::from_ref(machine), opts)
        .pop()
        .expect("one machine in, one schedule out")
}

/// Schedules every block of `func` for each machine in `machines`, sharing
/// the machine-independent analyses across the whole suite.
///
/// Global liveness, per-block exit liveness, and per-block [`PredFacts`]
/// depend only on the function; only the dependence graph (latencies, branch
/// shadow) and the list schedule itself depend on the machine. Table 2
/// schedules every function on five machine models, so hoisting the shared
/// work out of the per-machine loop removes ~80% of its analysis cost. The
/// result at index `i` is identical to `schedule_function(func,
/// &machines[i], opts)`.
pub fn schedule_function_suite(
    func: &Function,
    machines: &[Machine],
    opts: &SchedOptions,
) -> Vec<ScheduledFunction> {
    let live = GlobalLiveness::compute(func);
    let dep_opts: Vec<DepOptions> = machines
        .iter()
        .map(|m| DepOptions {
            branch_latency: m.branch_latency() as i32,
            pred_relaxation: opts.pred_relaxation,
            mem_classes: func.mem_classes().clone(),
        })
        .collect();
    let mut out = vec![ScheduledFunction::new(); machines.len()];
    for block in func.blocks_in_layout() {
        let ops = &block.ops;
        let mut exit_live = ExitLiveness::default();
        for (i, op) in ops.iter().enumerate() {
            if !op.is_branch() {
                continue;
            }
            let (regs, preds) = match op.opcode {
                Opcode::Branch => match op.branch_target() {
                    Some(t) => (
                        live.live_in_regs.get(&t).cloned().unwrap_or_default(),
                        live.live_in_preds.get(&t).cloned().unwrap_or_default(),
                    ),
                    None => (HashSet::new(), HashSet::new()),
                },
                _ => (HashSet::new(), HashSet::new()),
            };
            exit_live.at_op.insert(i, (regs, preds));
        }
        if let Some(ft) = func.fallthrough_of(block.id) {
            exit_live.at_end = (
                live.live_in_regs.get(&ft).cloned().unwrap_or_default(),
                live.live_in_preds.get(&ft).cloned().unwrap_or_default(),
            );
        }
        let mut facts = PredFacts::compute(ops);
        let lat_fns: Vec<_> =
            machines.iter().map(|m| move |op: &epic_ir::Op| m.latency_of(op)).collect();
        let lat_refs: Vec<&dyn Fn(&epic_ir::Op) -> u32> =
            lat_fns.iter().map(|f| f as &dyn Fn(&epic_ir::Op) -> u32).collect();
        let graphs = DepGraph::build_suite(ops, &mut facts, &lat_refs, &dep_opts, Some(&exit_live));
        for ((mi, machine), graph) in machines.iter().enumerate().zip(&graphs) {
            out[mi].set_block(block.id, schedule_block(ops, graph, machine));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{CmpCond, FunctionBuilder, Operand};

    #[test]
    fn sequential_machine_is_one_op_per_cycle() {
        let mut b = FunctionBuilder::new("s");
        let e = b.block("e");
        b.switch_to(e);
        let x = b.movi(1);
        let y = b.movi(2);
        let _ = b.add(x.into(), y.into());
        b.ret();
        let f = b.finish();
        let sched = schedule_function(&f, &Machine::sequential(), &SchedOptions::default());
        // 4 ops, one per cycle: issue cycles are a permutation of 0..4.
        let s = sched.block(e);
        let mut cycles: Vec<i64> = s.cycles.clone();
        cycles.sort_unstable();
        assert_eq!(cycles, vec![0, 1, 2, 3]);
    }

    #[test]
    fn wide_machine_packs_independent_ops() {
        let mut b = FunctionBuilder::new("w");
        let e = b.block("e");
        b.switch_to(e);
        for _ in 0..8 {
            b.movi(1);
        }
        b.ret();
        let f = b.finish();
        let sched = schedule_function(&f, &Machine::wide(), &SchedOptions::default());
        let s = sched.block(e);
        // 8 independent int ops on an 8-wide int machine: all in cycle 0.
        assert!(s.cycles[..8].iter().all(|&c| c == 0), "{:?}", s.cycles);
    }

    #[test]
    fn narrow_machine_serializes_by_class() {
        let mut b = FunctionBuilder::new("n");
        let e = b.block("e");
        b.switch_to(e);
        for _ in 0..4 {
            b.movi(1);
        }
        b.ret();
        let f = b.finish();
        let sched = schedule_function(&f, &Machine::narrow(), &SchedOptions::default());
        let s = sched.block(e);
        // 4 int ops on a 2-int machine need at least 2 cycles.
        let max = s.cycles[..4].iter().max().unwrap();
        assert!(*max >= 1);
    }

    #[test]
    fn dependent_branch_chain_is_serialized_without_frps() {
        // Unpredicated branch chain: each branch control-depends on the
        // previous, so they occupy consecutive cycles at least.
        let mut b = FunctionBuilder::new("chain");
        let blk = b.block("hb");
        let out = b.block("out");
        b.switch_to(out);
        b.ret();
        b.switch_to(blk);
        let x = b.reg();
        let p1 = b.cmpp_un(CmpCond::Eq, x.into(), Operand::Imm(0));
        b.branch_if(p1, out);
        let p2 = b.cmpp_un(CmpCond::Eq, x.into(), Operand::Imm(1));
        b.branch_if(p2, out);
        let p3 = b.cmpp_un(CmpCond::Eq, x.into(), Operand::Imm(2));
        b.branch_if(p3, out);
        b.ret();
        let f = b.finish();
        let sched = schedule_function(&f, &Machine::infinite(), &SchedOptions::default());
        let s = sched.block(blk);
        let ops = &f.block(blk).ops;
        let branch_cycles: Vec<i64> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.opcode == Opcode::Branch)
            .map(|(i, _)| s.cycles[i])
            .collect();
        assert_eq!(branch_cycles.len(), 3);
        assert!(branch_cycles[1] > branch_cycles[0]);
        assert!(branch_cycles[2] > branch_cycles[1]);
    }

    #[test]
    fn frp_branches_overlap_on_wide_branch_machine() {
        // FRP-converted chain on the infinite machine (25 branch units):
        // disjoint branches may share a cycle.
        let mut b = FunctionBuilder::new("frp");
        let blk = b.block("hb");
        let out = b.block("out");
        b.switch_to(out);
        b.ret();
        b.switch_to(blk);
        let x = b.reg();
        let y = b.reg();
        let (t1, f1) = b.cmpp_un_uc(CmpCond::Eq, x.into(), Operand::Imm(0));
        b.branch_if(t1, out);
        b.set_guard(Some(f1));
        let (t2, _) = b.cmpp_un_uc(CmpCond::Eq, y.into(), Operand::Imm(0));
        b.branch_if(t2, out);
        b.set_guard(None);
        b.ret();
        let f = b.finish();
        let sched = schedule_function(&f, &Machine::infinite(), &SchedOptions::default());
        let s = sched.block(blk);
        let ops = &f.block(blk).ops;
        let bc: Vec<i64> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.opcode == Opcode::Branch)
            .map(|(i, _)| s.cycles[i])
            .collect();
        // Branch 2's guard needs cmpp2 which needs cmpp1 (flow through f1);
        // but the two *branches* are not mutually ordered. The second branch
        // is limited by data height (2 cmpps), not by branch ordering:
        // cmpp1@0, cmpp2@1, branch1@1, branch2@2.
        assert!(bc[1] - bc[0] <= 1, "branches {:?} should overlap or nearly", bc);
    }

    #[test]
    fn schedule_respects_latency() {
        let mut b = FunctionBuilder::new("lat");
        let e = b.block("e");
        b.switch_to(e);
        let a0 = b.movi(0);
        let v = b.load(a0); // latency 2
        let _ = b.add(v.into(), Operand::Imm(1));
        b.ret();
        let f = b.finish();
        let sched = schedule_function(&f, &Machine::wide(), &SchedOptions::default());
        let s = sched.block(e);
        assert!(s.cycles[2] >= s.cycles[1] + 2, "{:?}", s.cycles);
    }
}
