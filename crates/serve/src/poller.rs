//! Readiness polling without a dependency: raw `epoll` on Linux, raw
//! `poll(2)` everywhere else (or on Linux when forced, which is how the
//! fallback stays tested).
//!
//! The workspace builds offline, so instead of pulling in `mio`/`libc`
//! this module declares the handful of syscall wrappers it needs as
//! `extern "C"` items against the C library the Rust standard library
//! already links. Both backends are level-triggered and expose the same
//! tiny interface: register/modify/deregister an fd under a caller-chosen
//! token, and wait for events.
//!
//! A [`WakeHandle`] (a self-pipe) lets worker threads interrupt a blocked
//! [`Poller::wait`] from outside the event loop — completions wake the
//! loop the same way readable sockets do.

use std::collections::HashMap;
use std::io;
use std::os::raw::{c_int, c_short, c_ulong, c_void};
use std::os::unix::io::RawFd;

/// Readiness interest for one registered fd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { read: true, write: false };
    /// Read + write interest.
    pub const BOTH: Interest = Interest { read: true, write: true };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd has bytes to read (or a pending accept, or EOF).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// Error or hangup; the connection is usually dead.
    pub error: bool,
}

// --- shared libc declarations -------------------------------------------

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
}

const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;

/// Caps the kernel send buffer of a socket (the kernel may round up and
/// doubles the value for bookkeeping). The event server uses this to keep
/// slow-reader backpressure in *its* buffers — where it is bounded and
/// observable — instead of letting the kernel's auto-tuned buffers absorb
/// megabytes per stalled client.
///
/// # Errors
///
/// The underlying `setsockopt` failure, if any.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    let val = bytes as c_int;
    // SAFETY: optval points at a live c_int of the stated length.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            (&val as *const c_int).cast::<c_void>(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;

const POLLIN: c_short = 0x1;
const POLLOUT: c_short = 0x4;
const POLLERR: c_short = 0x8;
const POLLHUP: c_short = 0x10;

#[repr(C)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl on an owned fd.
    if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

// --- epoll backend (Linux) ----------------------------------------------

#[cfg(target_os = "linux")]
mod epoll {
    use super::*;

    // x86_64 packs epoll_event; other Linux targets use natural layout.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub(super) fn epoll_create1(flags: c_int) -> c_int;
        pub(super) fn epoll_ctl(
            epfd: c_int,
            op: c_int,
            fd: c_int,
            event: *mut EpollEvent,
        ) -> c_int;
        pub(super) fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    pub(super) const EPOLL_CLOEXEC: c_int = 0x80000;
    pub(super) const EPOLL_CTL_ADD: c_int = 1;
    pub(super) const EPOLL_CTL_DEL: c_int = 2;
    pub(super) const EPOLL_CTL_MOD: c_int = 3;
    pub(super) const EPOLLIN: u32 = 0x1;
    pub(super) const EPOLLOUT: u32 = 0x4;
    pub(super) const EPOLLERR: u32 = 0x8;
    pub(super) const EPOLLHUP: u32 = 0x10;
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    Poll { registered: HashMap<RawFd, (usize, Interest)> },
}

/// A level-triggered readiness poller over raw fds.
pub struct Poller {
    backend: Backend,
    /// Wake-pipe read end, drained transparently inside [`Poller::wait`].
    wake_rx: RawFd,
    wake_tx: RawFd,
}

impl Poller {
    /// Creates a poller: epoll on Linux, poll(2) otherwise.
    /// `force_poll` selects the poll(2) backend even on Linux (the
    /// fallback is exercised in tests and behind the server's `--poll`
    /// flag, so it cannot rot).
    ///
    /// # Errors
    ///
    /// Any `epoll_create1`/`pipe` failure, verbatim.
    pub fn new(force_poll: bool) -> io::Result<Poller> {
        let mut pipe_fds = [0 as c_int; 2];
        // SAFETY: out-param array of exactly two ints.
        if unsafe { pipe(pipe_fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let (wake_rx, wake_tx) = (pipe_fds[0], pipe_fds[1]);
        set_nonblocking_fd(wake_rx)?;
        set_nonblocking_fd(wake_tx)?;
        let backend = Poller::make_backend(force_poll)?;
        let mut poller = Poller { backend, wake_rx, wake_tx };
        poller.register(wake_rx, WAKE_TOKEN, Interest::READ)?;
        Ok(poller)
    }

    #[cfg(target_os = "linux")]
    fn make_backend(force_poll: bool) -> io::Result<Backend> {
        if force_poll {
            return Ok(Backend::Poll { registered: HashMap::new() });
        }
        // SAFETY: plain syscall; the fd is owned by the backend.
        let epfd = unsafe { epoll::epoll_create1(epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Backend::Epoll { epfd })
    }

    #[cfg(not(target_os = "linux"))]
    fn make_backend(_force_poll: bool) -> io::Result<Backend> {
        Ok(Backend::Poll { registered: HashMap::new() })
    }

    /// True when running on the poll(2) fallback.
    pub fn is_poll_fallback(&self) -> bool {
        matches!(self.backend, Backend::Poll { .. })
    }

    /// A handle worker threads use to interrupt [`Poller::wait`].
    pub fn wake_handle(&self) -> WakeHandle {
        WakeHandle { fd: self.wake_tx }
    }

    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure, if any.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                epoll_ctl_checked(*epfd, epoll::EPOLL_CTL_ADD, fd, token, interest)
            }
            Backend::Poll { registered } => {
                registered.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Updates the interest set of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure, if any.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                epoll_ctl_checked(*epfd, epoll::EPOLL_CTL_MOD, fd, token, interest)
            }
            Backend::Poll { registered } => {
                registered.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Stops watching `fd`. Must be called before the fd is closed.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure, if any.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                epoll_ctl_checked(*epfd, epoll::EPOLL_CTL_DEL, fd, 0, Interest::READ)
            }
            Backend::Poll { registered } => {
                registered.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready (or a
    /// [`WakeHandle::wake`] fires), appending events to `out`. Wake-pipe
    /// events are drained and *not* reported; a wake with no other ready
    /// fd simply returns with `out` empty.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_wait`/`poll` failure (`EINTR` is retried).
    pub fn wait(&mut self, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut buf = [epoll::EpollEvent { events: 0, data: 0 }; 256];
                let n = loop {
                    // SAFETY: buf outlives the call; maxevents matches.
                    let n = unsafe {
                        epoll::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as c_int, -1)
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in &buf[..n] {
                    let (events, data) = (ev.events, ev.data);
                    if data as usize == WAKE_TOKEN {
                        drain_fd(self.wake_rx);
                        continue;
                    }
                    out.push(Event {
                        token: data as usize,
                        readable: events & (epoll::EPOLLIN | epoll::EPOLLHUP) != 0,
                        writable: events & epoll::EPOLLOUT != 0,
                        error: events & (epoll::EPOLLERR | epoll::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { registered } => {
                let mut fds: Vec<PollFd> = Vec::with_capacity(registered.len());
                let mut tokens: Vec<usize> = Vec::with_capacity(registered.len());
                for (&fd, &(token, interest)) in registered.iter() {
                    let mut events = 0;
                    if interest.read {
                        events |= POLLIN;
                    }
                    if interest.write {
                        events |= POLLOUT;
                    }
                    fds.push(PollFd { fd, events, revents: 0 });
                    tokens.push(token);
                }
                loop {
                    // SAFETY: fds is a live slice of PollFd; nfds matches.
                    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, -1) };
                    if n >= 0 {
                        break;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                }
                for (pfd, &token) in fds.iter().zip(&tokens) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    if token == WAKE_TOKEN {
                        drain_fd(self.wake_rx);
                        continue;
                    }
                    out.push(Event {
                        token,
                        readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        error: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: fds owned by this poller, closed exactly once.
        unsafe {
            #[cfg(target_os = "linux")]
            if let Backend::Epoll { epfd } = self.backend {
                close(epfd);
            }
            close(self.wake_rx);
            close(self.wake_tx);
        }
    }
}

/// The reserved token of the internal wake pipe; never reported to
/// callers, so any token is safe for them to use.
const WAKE_TOKEN: usize = usize::MAX;

#[cfg(target_os = "linux")]
fn epoll_ctl_checked(
    epfd: RawFd,
    op: c_int,
    fd: RawFd,
    token: usize,
    interest: Interest,
) -> io::Result<()> {
    let mut events: u32 = 0;
    if interest.read {
        events |= epoll::EPOLLIN;
    }
    if interest.write {
        events |= epoll::EPOLLOUT;
    }
    let mut ev = epoll::EpollEvent { events, data: token as u64 };
    // SAFETY: ev lives across the call; DEL ignores the event pointer on
    // modern kernels but passing a valid one is always allowed.
    if unsafe { epoll::epoll_ctl(epfd, op, fd, &mut ev) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Swallows everything currently readable from `fd` (wake-pipe drain).
fn drain_fd(fd: RawFd) {
    let mut buf = [0u8; 64];
    loop {
        // SAFETY: buf is a live local; count matches its length.
        let n = unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
        if n <= 0 {
            break;
        }
    }
}

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from any thread.
/// Cloneable and cheap: one nonblocking byte down a self-pipe (a full
/// pipe means a wake is already pending, which is just as good).
#[derive(Clone, Copy, Debug)]
pub struct WakeHandle {
    fd: RawFd,
}

// SAFETY: writing one byte to a pipe fd is thread-safe.
unsafe impl Send for WakeHandle {}
unsafe impl Sync for WakeHandle {}

impl WakeHandle {
    /// Interrupts the poller's current (or next) wait.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one-byte write from a live local; EAGAIN means the pipe
        // already holds a pending wake.
        unsafe { write(self.fd, (&byte as *const u8).cast::<c_void>(), 1) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn readiness_roundtrip(force_poll: bool) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new(force_poll).unwrap();
        assert_eq!(poller.is_poll_fallback(), force_poll || cfg!(not(target_os = "linux")));
        poller.register(server.as_raw_fd(), 7, Interest::READ).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable), "{events:?}");
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);

        // Write interest reports immediately on an empty socket buffer.
        poller.modify(server.as_raw_fd(), 7, Interest::BOTH).unwrap();
        poller.wait(&mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable), "{events:?}");

        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn epoll_backend_reports_readiness() {
        readiness_roundtrip(false);
    }

    #[test]
    fn poll_fallback_reports_readiness() {
        readiness_roundtrip(true);
    }

    fn wake_interrupts_wait(force_poll: bool) {
        let mut poller = Poller::new(force_poll).unwrap();
        let wake = poller.wake_handle();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            wake.wake();
        });
        let mut events = Vec::new();
        // Without the wake this would block forever: nothing registered.
        poller.wait(&mut events).unwrap();
        assert!(events.is_empty(), "wake itself is not an event: {events:?}");
        waker.join().unwrap();
    }

    #[test]
    fn wake_interrupts_epoll_wait() {
        wake_interrupts_wait(false);
    }

    #[test]
    fn wake_interrupts_poll_wait() {
        wake_interrupts_wait(true);
    }
}
