//! The batch-compile service front-end.
//!
//! ```text
//! serve [--threads N] [--timeout-ms N] [--max-detached N]
//!       [--heartbeat-ms N] [--tcp ADDR]
//!       [--event] [--workers N] [--max-inflight N]
//!       [--shed-window N] [--shed-caps S,M,L] [--conn-buffer BYTES] [--sndbuf BYTES] [--poll]
//! ```
//!
//! By default the server reads newline-delimited JSON requests from stdin
//! and answers on stdout, one response line per request, in request order;
//! EOF shuts it down and prints the run's metrics (request counts, cache
//! counters, latencies) as JSON on stderr. `--heartbeat-ms N` additionally
//! reports those tallies live every `N` ms while the batch runs, and a
//! `{"op":"metrics"}` request line fetches them in-band (see
//! `epic_serve::proto`). `--max-detached N` caps the compile threads that
//! timed-out requests may leave running (default 64); at the cap, budgeted
//! requests get an `overloaded` error. With `--tcp ADDR` it listens on
//! `ADDR` (e.g. `127.0.0.1:7777`) instead and serves each connection on
//! its own thread with the same protocol, reporting per-connection metrics
//! on stderr as connections close.
//!
//! `--tcp ADDR --event` selects the **event-driven server** (serve v2):
//! one epoll/poll event loop multiplexing every connection with
//! non-blocking I/O, compile work on a fixed pool of `--workers N`
//! threads routed by target fingerprint, per-connection write
//! backpressure (`--conn-buffer BYTES` high-water mark), and layered
//! admission control — a deterministic per-connection sliding window
//! (`--shed-window N` requests, per-tier caps `--shed-caps S,M,L` for
//! small/medium/large shape clusters) plus a global `--max-inflight N`
//! backstop. Shed requests get a structured `overloaded` error reply.
//! `--poll` forces the portable poll(2) backend even where epoll exists.
//!
//! All connections (and all requests within a batch) share one
//! [`CompileCache`]; set `EPIC_CACHE_DIR` to also persist stage artifacts
//! across server restarts. See `epic_serve::proto` for the wire format.

use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;

use epic_bench::CompileCache;
use epic_serve::{serve, EventOptions, EventServer, ServerOptions};

fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(i);
    true
}

fn parse_or_die<T: std::str::FromStr>(v: &str, flag: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag} needs an integer");
        exit(2);
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads =
        take_value_flag(&mut args, "--threads").map_or(0, |v| parse_or_die(&v, "--threads"));
    let default_timeout_ms =
        take_value_flag(&mut args, "--timeout-ms").map(|v| parse_or_die(&v, "--timeout-ms"));
    let max_detached =
        take_value_flag(&mut args, "--max-detached").map(|v| parse_or_die(&v, "--max-detached"));
    let heartbeat_ms =
        take_value_flag(&mut args, "--heartbeat-ms").map(|v| parse_or_die(&v, "--heartbeat-ms"));
    let tcp = take_value_flag(&mut args, "--tcp");
    let event = take_bool_flag(&mut args, "--event");
    let workers =
        take_value_flag(&mut args, "--workers").map_or(0, |v| parse_or_die(&v, "--workers"));
    let max_inflight =
        take_value_flag(&mut args, "--max-inflight").map(|v| parse_or_die(&v, "--max-inflight"));
    let shed_window =
        take_value_flag(&mut args, "--shed-window").map(|v| parse_or_die(&v, "--shed-window"));
    let shed_caps = take_value_flag(&mut args, "--shed-caps").map(|v| {
        let parts: Vec<usize> = v.split(',').map(|p| parse_or_die(p, "--shed-caps")).collect();
        if parts.len() != 3 {
            eprintln!("--shed-caps needs three comma-separated integers (small,medium,large)");
            exit(2);
        }
        [parts[0], parts[1], parts[2]]
    });
    let conn_buffer =
        take_value_flag(&mut args, "--conn-buffer").map(|v| parse_or_die(&v, "--conn-buffer"));
    let sndbuf = take_value_flag(&mut args, "--sndbuf").map(|v| parse_or_die(&v, "--sndbuf"));
    let force_poll = take_bool_flag(&mut args, "--poll");
    if let Some(unknown) = args.first() {
        eprintln!("unknown argument: {unknown}");
        eprintln!(
            "usage: serve [--threads N] [--timeout-ms N] [--max-detached N] \
             [--heartbeat-ms N] [--tcp ADDR] [--event] [--workers N] \
             [--max-inflight N] [--shed-window N] [--shed-caps S,M,L] \
             [--conn-buffer BYTES] [--sndbuf BYTES] [--poll]"
        );
        exit(2);
    }

    let mut opts = ServerOptions { threads, default_timeout_ms, ..ServerOptions::default() };
    if let Some(cap) = max_detached {
        opts.max_detached = cap;
    }
    opts.heartbeat_ms = heartbeat_ms;
    let cache = Arc::new(CompileCache::from_env());

    let Some(addr) = tcp else {
        if event {
            eprintln!("serve: --event requires --tcp ADDR");
            exit(2);
        }
        // StdinLock is not Send (the reader runs on its own thread), so
        // wrap the handle instead of locking it.
        let stdin = BufReader::new(std::io::stdin());
        let stdout = std::io::stdout();
        match serve(stdin, stdout.lock(), cache, &opts) {
            Ok(metrics) => eprintln!("serve: {}", metrics.to_json()),
            Err(e) => {
                eprintln!("serve: I/O error: {e}");
                exit(1);
            }
        }
        return;
    };

    if event {
        let mut ev_opts = EventOptions {
            workers,
            default_timeout_ms,
            force_poll,
            ..EventOptions::default()
        };
        if let Some(cap) = max_detached {
            ev_opts.max_detached = cap;
        }
        if let Some(n) = max_inflight {
            ev_opts.max_inflight = n;
        }
        if let Some(n) = shed_window {
            ev_opts.shed_window = n;
        }
        if let Some(caps) = shed_caps {
            ev_opts.shed_caps = caps;
        }
        if let Some(n) = conn_buffer {
            ev_opts.conn_buffer = n;
        }
        ev_opts.sndbuf = sndbuf;
        let server = EventServer::bind(&addr, cache, ev_opts).unwrap_or_else(|e| {
            eprintln!("serve: cannot listen on {addr}: {e}");
            exit(1);
        });
        let backend = if server.is_poll_fallback() { "poll" } else { "epoll" };
        eprintln!("serve: event server ({backend}) listening on {addr}");
        match server.run() {
            Ok(metrics) => eprintln!("serve: {}", metrics.to_json()),
            Err(e) => {
                eprintln!("serve: event loop failed: {e}");
                exit(1);
            }
        }
        return;
    }

    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("serve: cannot listen on {addr}: {e}");
        exit(1);
    });
    eprintln!("serve: listening on {addr}");
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: accept failed: {e}");
                continue;
            }
        };
        let peer = stream.peer_addr().map_or_else(|_| "?".into(), |p| p.to_string());
        let cache = Arc::clone(&cache);
        let opts = opts.clone();
        std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(r) => BufReader::new(r),
                Err(e) => {
                    eprintln!("serve: [{peer}] clone failed: {e}");
                    return;
                }
            };
            let mut writer = stream;
            match serve(reader, &mut writer, cache, &opts) {
                Ok(metrics) => eprintln!("serve: [{peer}] {}", metrics.to_json()),
                Err(e) => eprintln!("serve: [{peer}] I/O error: {e}"),
            }
            let _ = writer.flush();
        });
    }
}
