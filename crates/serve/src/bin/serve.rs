//! The batch-compile service front-end.
//!
//! ```text
//! serve [--threads N] [--timeout-ms N] [--max-detached N]
//!       [--heartbeat-ms N] [--tcp ADDR]
//! ```
//!
//! By default the server reads newline-delimited JSON requests from stdin
//! and answers on stdout, one response line per request, in request order;
//! EOF shuts it down and prints the run's metrics (request counts, cache
//! counters, latencies) as JSON on stderr. `--heartbeat-ms N` additionally
//! reports those tallies live every `N` ms while the batch runs, and a
//! `{"op":"metrics"}` request line fetches them in-band (see
//! `epic_serve::proto`). `--max-detached N` caps the compile threads that
//! timed-out requests may leave running (default 64); at the cap, budgeted
//! requests get an `overloaded` error. With `--tcp ADDR` it listens on
//! `ADDR` (e.g. `127.0.0.1:7777`) instead and serves each connection on
//! its own thread with the same protocol, reporting per-connection metrics
//! on stderr as connections close.
//!
//! All connections (and all requests within a batch) share one
//! [`CompileCache`]; set `EPIC_CACHE_DIR` to also persist stage artifacts
//! across server restarts. See `epic_serve::proto` for the wire format.

use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;

use epic_bench::CompileCache;
use epic_serve::{serve, ServerOptions};

fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = take_value_flag(&mut args, "--threads")
        .map(|v| v.parse().unwrap_or_else(|_| {
            eprintln!("--threads needs an integer");
            exit(2);
        }))
        .unwrap_or(0);
    let default_timeout_ms = take_value_flag(&mut args, "--timeout-ms").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--timeout-ms needs an integer");
            exit(2);
        })
    });
    let max_detached = take_value_flag(&mut args, "--max-detached").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--max-detached needs an integer");
            exit(2);
        })
    });
    let heartbeat_ms = take_value_flag(&mut args, "--heartbeat-ms").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--heartbeat-ms needs an integer");
            exit(2);
        })
    });
    let tcp = take_value_flag(&mut args, "--tcp");
    if let Some(unknown) = args.first() {
        eprintln!("unknown argument: {unknown}");
        eprintln!(
            "usage: serve [--threads N] [--timeout-ms N] [--max-detached N] \
             [--heartbeat-ms N] [--tcp ADDR]"
        );
        exit(2);
    }

    let mut opts = ServerOptions { threads, default_timeout_ms, ..ServerOptions::default() };
    if let Some(cap) = max_detached {
        opts.max_detached = cap;
    }
    opts.heartbeat_ms = heartbeat_ms;
    let cache = Arc::new(CompileCache::from_env());

    let Some(addr) = tcp else {
        // StdinLock is not Send (the reader runs on its own thread), so
        // wrap the handle instead of locking it.
        let stdin = BufReader::new(std::io::stdin());
        let stdout = std::io::stdout();
        match serve(stdin, stdout.lock(), cache, &opts) {
            Ok(metrics) => eprintln!("serve: {}", metrics.to_json()),
            Err(e) => {
                eprintln!("serve: I/O error: {e}");
                exit(1);
            }
        }
        return;
    };

    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("serve: cannot listen on {addr}: {e}");
        exit(1);
    });
    eprintln!("serve: listening on {addr}");
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: accept failed: {e}");
                continue;
            }
        };
        let peer = stream.peer_addr().map_or_else(|_| "?".into(), |p| p.to_string());
        let cache = Arc::clone(&cache);
        let opts = opts.clone();
        std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(r) => BufReader::new(r),
                Err(e) => {
                    eprintln!("serve: [{peer}] clone failed: {e}");
                    return;
                }
            };
            let mut writer = stream;
            match serve(reader, &mut writer, cache, &opts) {
                Ok(metrics) => eprintln!("serve: [{peer}] {}", metrics.to_json()),
                Err(e) => eprintln!("serve: [{peer}] I/O error: {e}"),
            }
            let _ = writer.flush();
        });
    }
}
