//! Deterministic load generator for the event-driven compile server.
//!
//! ```text
//! loadgen [--requests N] [--connections C] [--workers W] [--quick]
//!         [--poll] [--out PATH]
//! ```
//!
//! Generates a seeded, fully deterministic stream of mixed requests —
//! suite workloads (all three shape tiers), config overrides, inline IR,
//! `check:true` probes, control ops, malformed lines, blank lines — and
//! replays it through **both** servers:
//!
//! 1. the event-driven server (serve v2) over real TCP connections,
//!    including two torture clients (a slow reader that sips 512-byte
//!    chunks, and a writer that sends one byte per syscall), recording
//!    p50/p99/p999 request latency from the `epic-obs` histograms;
//! 2. the v1 blocking server in-process, as the reference.
//!
//! Every v2 reply must be **byte-identical to v1** up to its `"cache"`
//! key (the suffix carries run-specific wall-clock and trace ids) and
//! arrive **in request order** on its connection. A separate pass replays
//! one substream twice against tight admission caps and checks the shed
//! id sets match exactly (deterministic load shedding).
//!
//! The default run writes `BENCH_serve_pr7.json`; `--quick` runs a small
//! smoke sweep (used by `just serve-bench`) that asserts the same
//! invariants plus a generous p99 bound and writes nothing.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use epic_bench::timing::json_string;
use epic_bench::CompileCache;
use epic_obs::MetricsRegistry;
use epic_serve::event::{READ_PAUSES_COUNTER, SHED_COUNTER};
use epic_serve::{serve, EventOptions, EventServer, ServerOptions, ShapeTable, Tier};

/// Deterministic 64-bit LCG (MMIX constants); the whole stream derives
/// from one seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// The workload names grouped by shape tier, so the stream provably mixes
/// all clusters.
struct Mix {
    small: Vec<&'static str>,
    medium: Vec<&'static str>,
    large: Vec<&'static str>,
    inline_ir: String,
}

impl Mix {
    fn new() -> Mix {
        let table = ShapeTable::new();
        let mut small = Vec::new();
        let mut medium = Vec::new();
        let mut large = Vec::new();
        for w in epic_workloads::all() {
            match table.workload(w.name).expect("suite workload").tier() {
                Tier::Small => small.push(w.name),
                Tier::Medium => medium.push(w.name),
                Tier::Large => large.push(w.name),
            }
        }
        let strcpy = epic_workloads::by_name("strcpy").expect("strcpy");
        let inline_ir = json_string(&strcpy.func.to_string());
        Mix { small, medium, large, inline_ir }
    }

    /// The `i`-th request line of the stream seeded by `seed` (trailing
    /// newline included; an empty string models the blank line).
    fn line(&self, rng: &mut Lcg, id: u64) -> String {
        const CONFIGS: [&str; 3] = [
            "",
            ",\"config\":{\"trace\":{\"min_count\":8}}",
            ",\"config\":{\"cpr\":{\"max_branches\":3}}",
        ];
        match rng.below(100) {
            // 58%: plain hot workloads, weighted toward the cheap tiers.
            0..=37 => format!("{{\"id\":{id},\"workload\":\"{}\"}}\n", self.pick_small(rng)),
            38..=49 => format!("{{\"id\":{id},\"workload\":\"{}\"}}\n", rng.pick(&self.medium)),
            50..=57 => format!("{{\"id\":{id},\"workload\":\"{}\"}}\n", rng.pick(&self.large)),
            // 12%: config overrides split the cache and the shape cluster.
            58..=69 => {
                let cfg = CONFIGS[rng.below(CONFIGS.len() as u64) as usize];
                format!("{{\"id\":{id},\"workload\":\"{}\"{cfg}}}\n", self.pick_small(rng))
            }
            // 8%: emit_ir inflates replies (exercises write backpressure).
            70..=77 => {
                format!("{{\"id\":{id},\"workload\":\"{}\",\"emit_ir\":true}}\n", self.pick_small(rng))
            }
            // 2%: differential checks on the cheapest tier.
            78..=79 => format!("{{\"id\":{id},\"workload\":\"strcpy\",\"check\":true}}\n"),
            // 5%: inline IR with its profiling input.
            80..=84 => format!(
                "{{\"id\":{id},\"name\":\"inline-{}\",\"ir\":{},\"unroll\":1,\
                 \"input\":{{\"memory_size\":16384,\"memory\":[[0,[104,105,0]]],\"fuel\":100000}}}}\n",
                rng.below(4),
                self.inline_ir
            ),
            // 3%: control ops.
            85..=87 => format!("{{\"id\":{id},\"op\":\"metrics\"}}\n"),
            // 7%: malformed traffic that must answer structured errors.
            88..=90 => "this line is not json\n".to_string(),
            91..=92 => format!("{{\"id\":{id},\"workload\":\"no-such-workload\"}}\n"),
            93..=94 => format!("{{\"id\":{id},\"op\":\"launch-missiles\"}}\n"),
            95 => format!("{{\"id\":{id},\"workload\":42}}\n"),
            // 4%: blank lines (skipped by both servers, no reply slot).
            _ => "\n".to_string(),
        }
    }

    fn pick_small(&self, rng: &mut Lcg) -> &'static str {
        self.small[rng.below(self.small.len() as u64) as usize]
    }
}

/// Builds connection `c`'s substream: `n` generated lines plus the count
/// of expected replies (blank lines get none).
fn build_stream(mix: &Mix, seed: u64, n: usize) -> (String, usize) {
    let mut rng = Lcg(seed);
    let mut out = String::new();
    let mut replies = 0;
    for i in 0..n {
        let line = mix.line(&mut rng, i as u64);
        if line.trim() != "" {
            replies += 1;
        }
        out.push_str(&line);
    }
    (out, replies)
}

/// Everything before the reply's `"cache"` key: a pure function of the
/// request (the suffix is wall-clock and trace id).
fn stable_prefix(line: &str) -> &str {
    line.split(",\"cache\":").next().unwrap()
}

/// How a client reads its connection: realistically, in tiny sips with
/// pauses (forcing server-side backpressure), or writing one byte per
/// syscall.
#[derive(Clone, Copy, PartialEq)]
enum Torture {
    None,
    SlowReader,
    ByteWriter,
}

/// Replays one substream over a real TCP connection and returns the
/// replies in arrival order.
fn replay(addr: SocketAddr, stream: String, torture: Torture) -> Vec<String> {
    let conn = TcpStream::connect(addr).expect("connect");
    let mut rd = conn.try_clone().expect("clone");
    let writer = std::thread::spawn(move || {
        let mut wr = &conn;
        if torture == Torture::ByteWriter {
            for b in stream.as_bytes() {
                wr.write_all(std::slice::from_ref(b)).expect("dribble");
            }
        } else {
            wr.write_all(stream.as_bytes()).expect("send");
        }
        conn.shutdown(std::net::Shutdown::Write).expect("half-close");
    });
    let mut replies = Vec::new();
    if torture == Torture::SlowReader {
        let mut raw = Vec::new();
        let mut chunk = [0u8; 512];
        loop {
            match rd.read(&mut chunk) {
                Ok(0) => break,
                Ok(k) => {
                    raw.extend_from_slice(&chunk[..k]);
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("slow read failed: {e}"),
            }
        }
        replies.extend(String::from_utf8(raw).unwrap().lines().map(str::to_string));
    } else {
        for line in BufReader::new(rd).lines() {
            replies.push(line.expect("reply line"));
        }
    }
    writer.join().expect("writer thread");
    replies
}

/// Runs the same substream through the in-process v1 server.
fn v1_replies(stream: &str, cache: &Arc<CompileCache>) -> Vec<String> {
    let mut out: Vec<u8> = Vec::new();
    let opts = ServerOptions { threads: 2, ..ServerOptions::default() };
    serve(BufReader::new(stream.as_bytes()), &mut out, Arc::clone(cache), &opts)
        .expect("v1 serve");
    String::from_utf8(out).unwrap().lines().map(str::to_string).collect()
}

/// Compares one connection's v2 replies against the v1 reference.
/// Returns the number of compared (non-control) replies.
fn compare(conn_label: usize, got: &[String], expect: &[String]) -> usize {
    assert_eq!(
        got.len(),
        expect.len(),
        "conn {conn_label}: reply count diverged (v2 {} vs v1 {})",
        got.len(),
        expect.len()
    );
    let mut compared = 0;
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        if g.contains("\"metrics\"") && e.contains("\"metrics\"") {
            continue; // live registry snapshots legitimately differ
        }
        assert_eq!(
            stable_prefix(g),
            stable_prefix(e),
            "conn {conn_label} reply {i}: v2 diverged from v1"
        );
        compared += 1;
    }
    compared
}

/// Ids of replies shed with an `overloaded` error.
fn shed_ids(replies: &[String]) -> Vec<u64> {
    replies
        .iter()
        .filter(|r| r.contains("\"kind\":\"overloaded\""))
        .filter_map(|r| {
            let after = r.split("\"id\":").nth(1)?;
            after.split([',', '}']).next()?.parse().ok()
        })
        .collect()
}

fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(i);
    true
}

fn hist_json(name: &str) -> String {
    let s = MetricsRegistry::global().histogram(name).snapshot();
    format!(
        "{{\"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"p999_us\":{}}}",
        s.count, s.p50, s.p90, s.p99, s.p999
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = take_bool_flag(&mut args, "--quick");
    let force_poll = take_bool_flag(&mut args, "--poll");
    let requests: usize = take_value_flag(&mut args, "--requests")
        .map_or(if quick { 4_000 } else { 100_000 }, |v| v.parse().expect("--requests"));
    let connections: usize = take_value_flag(&mut args, "--connections")
        .map_or(8, |v| v.parse().expect("--connections"));
    let workers: usize =
        take_value_flag(&mut args, "--workers").map_or(0, |v| v.parse().expect("--workers"));
    let out_path = take_value_flag(&mut args, "--out");
    if let Some(unknown) = args.first() {
        eprintln!("unknown argument: {unknown}");
        eprintln!(
            "usage: loadgen [--requests N] [--connections C] [--workers W] \
             [--quick] [--poll] [--out PATH]"
        );
        exit(2);
    }

    let mix = Mix::new();
    eprintln!(
        "loadgen: {} requests over {} connections (+2 torture), tiers small={} medium={} large={}",
        requests,
        connections,
        mix.small.len(),
        mix.medium.len(),
        mix.large.len()
    );

    // Substreams: `connections` bulk streams plus two torture clients
    // (their requests count toward the total).
    let clients = connections + 2;
    let torture_n = (requests / clients).min(400); // torture clients are slow by design
    let bulk_total = requests - 2 * torture_n;
    let per_conn = bulk_total / connections;
    let mut streams: Vec<(String, usize, Torture)> = Vec::new();
    let mut total = 0;
    for c in 0..connections {
        let n = per_conn + if c == 0 { bulk_total - per_conn * connections } else { 0 };
        let (s, replies) = build_stream(&mix, 0x5eed + c as u64, n);
        total += n;
        streams.push((s, replies, Torture::None));
    }
    let (s, r) = build_stream(&mix, 0xbad5eed, torture_n);
    total += torture_n;
    streams.push((s, r, Torture::SlowReader));
    let (s, r) = build_stream(&mix, 0x1b17e, torture_n);
    total += torture_n;
    streams.push((s, r, Torture::ByteWriter));

    // --- Pass 1: serve v2 over TCP --------------------------------------
    let opts = EventOptions {
        workers,
        force_poll,
        max_inflight: usize::MAX,
        max_detached: usize::MAX,
        ..EventOptions::default()
    };
    let cache = Arc::new(CompileCache::new());
    let server = EventServer::bind("127.0.0.1:0", cache, opts).expect("bind event server");
    let backend = if server.is_poll_fallback() { "poll" } else { "epoll" };
    let addr = server.local_addr().expect("local_addr");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("event loop"));

    let t0 = std::time::Instant::now();
    let client_threads: Vec<_> = streams
        .iter()
        .map(|(s, _, torture)| {
            let (s, torture) = (s.clone(), *torture);
            std::thread::spawn(move || replay(addr, s, torture))
        })
        .collect();
    let v2: Vec<Vec<String>> = client_threads.into_iter().map(|t| t.join().expect("client")).collect();
    let wall_s = t0.elapsed().as_secs_f64();
    let latency = hist_json("serve_request_us");
    let tier_latency: Vec<String> = Tier::ALL
        .iter()
        .map(|t| {
            let name = epic_obs::metric_name("serve_request_us", &[("tier", t.name())]);
            format!("\"{}\":{}", t.name(), hist_json(&name))
        })
        .collect();
    let pauses = MetricsRegistry::global().counter(READ_PAUSES_COUNTER).value();
    shutdown.shutdown();
    let metrics = server_thread.join().expect("server thread");
    eprintln!(
        "loadgen: v2 answered {} requests in {:.1}s ({:.0} req/s, {} backend)",
        metrics.requests,
        wall_s,
        metrics.requests as f64 / wall_s,
        backend
    );

    // Ordering + completeness before anything else.
    for (c, ((_, expected_replies, _), got)) in streams.iter().zip(&v2).enumerate() {
        assert_eq!(
            got.len(),
            *expected_replies,
            "conn {c}: dropped or duplicated replies (got {}, expected {expected_replies})",
            got.len()
        );
    }

    // --- Pass 2: the v1 reference, in-process ---------------------------
    let v1_cache = Arc::new(CompileCache::new());
    let mut compared = 0;
    for (c, ((stream, _, _), got)) in streams.iter().zip(&v2).enumerate() {
        let expect = v1_replies(stream, &v1_cache);
        compared += compare(c, got, &expect);
    }
    eprintln!("loadgen: {compared} replies byte-identical to v1 (prefix up to \"cache\")");

    // --- Pass 3: deterministic shedding ---------------------------------
    let shed_opts = EventOptions {
        workers: 2,
        force_poll,
        shed_window: 8,
        shed_caps: [8, 8, 1],
        max_detached: usize::MAX,
        ..EventOptions::default()
    };
    let cache = Arc::new(CompileCache::new());
    let server = EventServer::bind("127.0.0.1:0", cache, shed_opts).expect("bind shed server");
    let addr = server.local_addr().expect("local_addr");
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("event loop"));
    let (shed_stream, _) = build_stream(&mix, 0xfeed, if quick { 500 } else { 3_000 });
    let first = shed_ids(&replay(addr, shed_stream.clone(), Torture::None));
    let second = shed_ids(&replay(addr, shed_stream, Torture::None));
    shutdown.shutdown();
    server_thread.join().expect("shed server thread");
    assert!(!first.is_empty(), "a 1-large cap must shed this stream");
    assert_eq!(first, second, "same stream + same caps must shed the same ids");
    eprintln!("loadgen: shedding deterministic ({} sheds, identical across replays)", first.len());

    let shed_counts: Vec<String> = Tier::ALL
        .iter()
        .map(|t| {
            let name = epic_obs::metric_name(SHED_COUNTER, &[("tier", t.name())]);
            format!("\"{}\":{}", t.name(), MetricsRegistry::global().counter(&name).value())
        })
        .collect();

    if quick {
        // Smoke gates for CI: nothing dropped (asserted above), sane tail.
        let p99_us = MetricsRegistry::global().histogram("serve_request_us").snapshot().p99;
        let bound_us = 2_000_000;
        assert!(
            p99_us < bound_us,
            "p99 request latency {p99_us}us breaches the {bound_us}us smoke bound"
        );
        eprintln!("loadgen: quick smoke ok (p99 {p99_us}us, all replies in order)");
        if out_path.is_none() {
            return;
        }
    }

    let json = format!(
        "{{\n  \"snapshot\": \"serve_pr7\",\n  \"requests\": {total},\n  \"replies\": {compared_total},\n  \
         \"connections\": {clients},\n  \"workers\": {workers_n},\n  \"backend\": \"{backend}\",\n  \
         \"wall_s\": {wall_s:.3},\n  \"byte_identical_vs_v1\": true,\n  \"in_order\": true,\n  \
         \"shed_deterministic\": true,\n  \"shed_replay_sheds\": {sheds},\n  \
         \"read_pauses\": {pauses},\n  \"shed_totals\": {{{shed_counts}}},\n  \
         \"latency_us\": {latency},\n  \"tier_latency_us\": {{{tiers}}}\n}}\n",
        compared_total = v2.iter().map(Vec::len).sum::<usize>(),
        workers_n = if workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            workers
        },
        sheds = first.len(),
        shed_counts = shed_counts.join(","),
        tiers = tier_latency.join(","),
    );
    let path = out_path.unwrap_or_else(|| "BENCH_serve_pr7.json".to_string());
    std::fs::write(&path, &json).expect("write bench json");
    eprintln!("loadgen: wrote {path}");
}
