//! The event-driven compile server (serve v2).
//!
//! One event-loop thread multiplexes every TCP connection through a
//! [`Poller`] (epoll on Linux, poll(2) fallback): non-blocking accept,
//! read, and write, with a per-connection state machine. Compile work
//! never runs on the loop — requests are dispatched to a **fixed worker
//! pool**, routed by the target's structural fingerprint (the same FNV
//! mix the [`CompileCache`] shards by), so a hot workload's probes stay
//! on one worker and its cache shard stays core-local. Workers push
//! completions onto a queue and wake the loop through the poller's
//! self-pipe.
//!
//! ## Ordering and backpressure
//!
//! Replies stream back **in request order per connection**: every parsed
//! line takes a sequence number, completions park in a reorder map, and
//! the writer drains the map contiguously. A connection's output buffer
//! has a high-water mark; crossing it *pauses reading* from that client
//! (its socket stays open, its submitted work finishes) until the buffer
//! drains below half — so a slow reader bounds its own memory instead of
//! growing the server's. Half-closed sockets (client shut down its write
//! side) still receive every reply already in flight.
//!
//! ## Admission and load shedding
//!
//! Three layers, cheapest first:
//! 1. **Deterministic shape admission** ([`crate::shape`]): requests are
//!    classified into shape clusters (op count, branch height, config
//!    hash) before any parse; each connection has a sliding window with
//!    per-tier caps, and over-cap requests get a structured `overloaded`
//!    reply. Same stream + same caps ⇒ same shed set, always.
//! 2. **Global in-flight backstop** (`max_inflight`): when the worker
//!    queues hold that many unfinished compiles, further compile requests
//!    are shed (non-deterministic by design — it reacts to actual load).
//! 3. **Detached-thread cap** (`max_detached`, shared with v1): bounds
//!    threads left behind by expired per-request timeout budgets.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use epic_bench::{route_fingerprint, CompileCache};
use epic_obs::{metric_name, Counter, Gauge, Histogram, MetricsRegistry};

use crate::exec::{process, LiveMetrics, Outcome, ServerMetrics, DETACHED_WORKERS_GAUGE};
use crate::poller::{Event, Interest, Poller, WakeHandle};
use crate::proto::{parse_control, peek_id, render_metrics, ControlOp};
use crate::shape::{Admission, ShapeTable, Tier};
use crate::ServeError;

/// Registry name of the gauge tracking compile jobs queued or running on
/// the worker pool.
pub const QUEUE_DEPTH_GAUGE: &str = "serve_event_queue_depth";
/// Registry name of the counter of read-side backpressure pauses.
pub const READ_PAUSES_COUNTER: &str = "serve_read_pauses_total";
/// Base name of the per-tier shed counters
/// (`serve_shed_total{tier="small"|"medium"|"large"}`).
pub const SHED_COUNTER: &str = "serve_shed_total";

/// Tuning knobs for one [`EventServer`].
#[derive(Clone, Debug)]
pub struct EventOptions {
    /// Compile worker threads; `0` means one per available core.
    pub workers: usize,
    /// Budget applied to requests that don't set their own `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Cap on concurrently-abandoned budget threads (see
    /// [`crate::ServerOptions::max_detached`]).
    pub max_detached: usize,
    /// Global backstop: compile requests arriving while this many are
    /// queued or running are shed with an `overloaded` reply. Load-
    /// dependent, hence non-deterministic; set it high when replaying
    /// streams for byte comparison.
    pub max_inflight: usize,
    /// Size of the per-connection deterministic admission window.
    pub shed_window: usize,
    /// Per-tier admission caps (`[small, medium, large]`) within the
    /// window. A cap `>= shed_window` never sheds that tier.
    pub shed_caps: [usize; 3],
    /// Output-buffer high-water mark per connection, bytes. Crossing it
    /// pauses reading from the connection until the buffer half-drains.
    pub conn_buffer: usize,
    /// Kernel `SO_SNDBUF` cap applied to accepted connections. `None`
    /// keeps the kernel's auto-tuned default, which can absorb megabytes
    /// per stalled client before `conn_buffer` backpressure engages; set
    /// it to make a slow reader's backlog land in the server's bounded
    /// buffer instead.
    pub sndbuf: Option<usize>,
    /// Force the poll(2) backend even where epoll is available.
    pub force_poll: bool,
}

impl Default for EventOptions {
    fn default() -> Self {
        EventOptions {
            workers: 0,
            default_timeout_ms: None,
            max_detached: 64,
            max_inflight: 1024,
            shed_window: 64,
            shed_caps: [64, 64, 64],
            conn_buffer: 256 * 1024,
            sndbuf: None,
            force_poll: false,
        }
    }
}

impl EventOptions {
    fn worker_count(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }
}

/// Requests a running [`EventServer::run`] loop to stop (idempotent,
/// thread-safe). The loop finishes its current poll round, drops every
/// connection, joins the workers, and returns.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    wake: WakeHandle,
}

impl ShutdownHandle {
    /// Signals the loop to stop and wakes it if blocked.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
        self.wake.wake();
    }
}

/// One compile job shipped to a worker.
struct Job {
    token: usize,
    seq: u64,
    line: String,
    tier: Tier,
}

/// One finished job coming back from a worker.
struct Completion {
    token: usize,
    seq: u64,
    tier: Tier,
    outcome: Outcome,
}

/// A reply waiting for its turn in a connection's output order.
enum PendingReply {
    /// A finished (or immediately-failed) compile outcome.
    Done(Outcome),
    /// A control op, rendered when its turn comes so its snapshot covers
    /// exactly the requests answered before it (v1 semantics).
    Control(ControlOp),
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    /// Bytes read but not yet consumed as complete lines.
    inbuf: Vec<u8>,
    /// Reply bytes not yet accepted by the socket.
    outbuf: Vec<u8>,
    /// Prefix of `outbuf` already written.
    out_pos: usize,
    /// Sequence number the next parsed line will take.
    next_seq: u64,
    /// Sequence number the next emitted reply must have.
    next_write: u64,
    /// Out-of-order completions waiting for their turn.
    pending: HashMap<u64, PendingReply>,
    /// Jobs dispatched to workers and not yet completed.
    inflight: usize,
    /// Client sent EOF (possibly a half-close: replies still flow).
    read_closed: bool,
    /// Reading is paused by output backpressure.
    paused: bool,
    /// Connection is broken; discard it at the next opportunity.
    dead: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    admission: Admission,
    /// Per-connection tallies ({"op":"metrics"} replies and the close
    /// report reconcile against these).
    live: LiveMetrics,
}

impl Conn {
    fn queued_out(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    fn wants(&self) -> Interest {
        Interest {
            read: !self.read_closed && !self.paused && !self.dead,
            write: self.queued_out() > 0,
        }
    }

    /// Finished: all input consumed, all replies delivered.
    fn drained(&self) -> bool {
        self.read_closed && self.inflight == 0 && self.pending.is_empty() && self.queued_out() == 0
    }
}

/// Shared handles the loop threads use for accounting.
struct Ctx {
    cache: Arc<CompileCache>,
    opts: EventOptions,
    worker_count: usize,
    senders: Vec<mpsc::Sender<Job>>,
    shape: ShapeTable,
    global_live: Arc<LiveMetrics>,
    queue_gauge: Arc<Gauge>,
    pause_counter: Arc<Counter>,
    shed_counters: [Arc<Counter>; 3],
    tier_hists: [Arc<Histogram>; 3],
    latency_hist: Arc<Histogram>,
    detached_gauge: Arc<Gauge>,
}

/// The event-driven compile server. [`bind`](EventServer::bind) it, grab
/// a [`ShutdownHandle`], then [`run`](EventServer::run) the loop (it
/// blocks until shut down).
pub struct EventServer {
    listener: TcpListener,
    poller: Poller,
    ctx: Ctx,
    receivers: Vec<mpsc::Receiver<Job>>,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    shutdown: Arc<AtomicBool>,
}

const LISTENER_TOKEN: usize = 0;

impl EventServer {
    /// Binds `addr` and prepares the poller and worker channels (workers
    /// start inside [`run`](EventServer::run)).
    ///
    /// # Errors
    ///
    /// Socket or poller creation failures, verbatim.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cache: Arc<CompileCache>,
        opts: EventOptions,
    ) -> io::Result<EventServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new(opts.force_poll)?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        let worker_count = opts.worker_count();
        let mut senders = Vec::with_capacity(worker_count);
        let mut receivers = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let (tx, rx) = mpsc::channel::<Job>();
            senders.push(tx);
            receivers.push(rx);
        }
        let registry = MetricsRegistry::global();
        let tier_metric =
            |base: &str, t: Tier| registry.histogram(&metric_name(base, &[("tier", t.name())]));
        let ctx = Ctx {
            cache,
            worker_count,
            senders,
            shape: ShapeTable::new(),
            global_live: Arc::new(LiveMetrics::default()),
            queue_gauge: registry.gauge(QUEUE_DEPTH_GAUGE),
            pause_counter: registry.counter(READ_PAUSES_COUNTER),
            shed_counters: Tier::ALL.map(|t| {
                registry.counter(&metric_name(SHED_COUNTER, &[("tier", t.name())]))
            }),
            tier_hists: Tier::ALL.map(|t| tier_metric(crate::exec::REQUEST_LATENCY_HISTOGRAM, t)),
            latency_hist: registry.histogram(crate::exec::REQUEST_LATENCY_HISTOGRAM),
            detached_gauge: registry.gauge(DETACHED_WORKERS_GAUGE),
            opts,
        };
        Ok(EventServer {
            listener,
            poller,
            ctx,
            receivers,
            completions: Arc::new(Mutex::new(VecDeque::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// The underlying `getsockname` failure, if any.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// True when running on the poll(2) fallback backend.
    pub fn is_poll_fallback(&self) -> bool {
        self.poller.is_poll_fallback()
    }

    /// A handle that stops [`run`](EventServer::run) from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { flag: Arc::clone(&self.shutdown), wake: self.poller.wake_handle() }
    }

    /// Runs the loop until [`ShutdownHandle::shutdown`]. Returns the
    /// server-wide tallies (per-connection tallies are reported on stderr
    /// as connections close, mirroring the v1 TCP front-end).
    ///
    /// # Errors
    ///
    /// Only poller-level failures escape; per-connection I/O errors drop
    /// that connection and per-request failures become `{"ok":false}`
    /// replies.
    pub fn run(mut self) -> io::Result<ServerMetrics> {
        let wake = self.poller.wake_handle();
        let workers: Vec<std::thread::JoinHandle<()>> = self
            .receivers
            .drain(..)
            .map(|rx| {
                let cache = Arc::clone(&self.ctx.cache);
                let completions = Arc::clone(&self.completions);
                let default_timeout = self.ctx.opts.default_timeout_ms;
                let max_detached = self.ctx.opts.max_detached;
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let outcome = process(&job.line, &cache, default_timeout, max_detached);
                        completions.lock().expect("completion queue poisoned").push_back(
                            Completion {
                                token: job.token,
                                seq: job.seq,
                                tier: job.tier,
                                outcome,
                            },
                        );
                        wake.wake();
                    }
                })
            })
            .collect();

        let mut conns: HashMap<usize, Conn> = HashMap::new();
        let mut next_token = LISTENER_TOKEN + 1;
        let mut inflight_total: usize = 0;
        let mut events: Vec<Event> = Vec::new();
        let loop_result = loop {
            if let Err(e) = self.poller.wait(&mut events) {
                break Err(e);
            }
            if self.shutdown.load(Ordering::Acquire) {
                break Ok(());
            }
            for ev in &events {
                if ev.token == LISTENER_TOKEN {
                    accept_ready(
                        &self.listener,
                        &mut self.poller,
                        &mut conns,
                        &mut next_token,
                        &self.ctx,
                    );
                } else if let Some(conn) = conns.get_mut(&ev.token) {
                    if ev.error {
                        conn.dead = true;
                    }
                    if ev.readable && !conn.dead {
                        read_ready(conn, ev.token, &self.ctx, &mut inflight_total);
                    }
                    if ev.writable && !conn.dead {
                        write_ready(conn);
                    }
                }
            }
            // Worker completions (the wake pipe got us here if nothing
            // else did).
            let batch: Vec<Completion> = {
                let mut q = self.completions.lock().expect("completion queue poisoned");
                q.drain(..).collect()
            };
            for done in batch {
                self.ctx.queue_gauge.add(-1);
                inflight_total = inflight_total.saturating_sub(1);
                let Some(conn) = conns.get_mut(&done.token) else {
                    continue; // connection died before its reply
                };
                conn.inflight -= 1;
                let us = (done.outcome.ms * 1e3) as u64;
                self.ctx.latency_hist.observe(us);
                self.ctx.tier_hists[done.tier.index()].observe(us);
                conn.pending.insert(done.seq, PendingReply::Done(done.outcome));
            }
            // Advance every connection's state machine and sweep the dead.
            let tokens: Vec<usize> = conns.keys().copied().collect();
            for token in tokens {
                let conn = conns.get_mut(&token).expect("token just listed");
                advance(conn, &self.ctx);
                if conn.dead || conn.drained() {
                    let conn = conns.remove(&token).expect("token just listed");
                    let _ = self.poller.deregister(conn.fd);
                    eprintln!("serve-event: conn closed {}", conn.live.snapshot().to_json());
                } else {
                    let want = conn.wants();
                    if want != conn.interest {
                        conn.interest = want;
                        let _ = self.poller.modify(conn.fd, token, want);
                    }
                }
            }
        };
        drop(self.ctx.senders); // workers drain their queues and exit
        for w in workers {
            let _ = w.join();
        }
        loop_result?;
        Ok(self.ctx.global_live.snapshot())
    }
}

/// Accepts every pending connection on the listener.
fn accept_ready(
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut HashMap<usize, Conn>,
    next_token: &mut usize,
    ctx: &Ctx,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let fd = stream.as_raw_fd();
                if let Some(bytes) = ctx.opts.sndbuf {
                    let _ = crate::poller::set_send_buffer(fd, bytes);
                }
                let token = *next_token;
                *next_token += 1;
                let conn = Conn {
                    stream,
                    fd,
                    inbuf: Vec::new(),
                    outbuf: Vec::new(),
                    out_pos: 0,
                    next_seq: 0,
                    next_write: 0,
                    pending: HashMap::new(),
                    inflight: 0,
                    read_closed: false,
                    paused: false,
                    dead: false,
                    interest: Interest::READ,
                    admission: Admission::new(ctx.opts.shed_window, ctx.opts.shed_caps),
                    live: LiveMetrics::default(),
                };
                if poller.register(fd, token, Interest::READ).is_ok() {
                    conns.insert(token, conn);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                eprintln!("serve-event: accept failed: {e}");
                break;
            }
        }
    }
}

/// Reads everything currently available and turns complete lines into
/// dispatched jobs or immediate replies.
fn read_ready(conn: &mut Conn, token: usize, ctx: &Ctx, inflight_total: &mut usize) {
    let mut buf = [0u8; 16384];
    loop {
        if conn.paused {
            break; // backpressure engaged mid-read
        }
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&buf[..n]);
                consume_lines(conn, token, ctx, inflight_total);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    consume_lines(conn, token, ctx, inflight_total);
}

/// Splits `inbuf` at newlines and handles each complete line.
fn consume_lines(conn: &mut Conn, token: usize, ctx: &Ctx, inflight_total: &mut usize) {
    let mut start = 0;
    while let Some(nl) = conn.inbuf[start..].iter().position(|&b| b == b'\n') {
        let end = start + nl;
        let mut line_end = end;
        if line_end > start && conn.inbuf[line_end - 1] == b'\r' {
            line_end -= 1; // BufRead::lines strips \r\n too
        }
        let line = conn.inbuf[start..line_end].to_vec();
        start = end + 1;
        handle_line(conn, token, &line, ctx, inflight_total);
    }
    conn.inbuf.drain(..start);
}

/// Classifies, admits, and routes one request line — or produces its
/// immediate reply. Mirrors v1 line semantics exactly: blank lines are
/// skipped, invalid UTF-8 answers an `io` error and keeps the stream
/// alive, control ops render in reply order.
fn handle_line(
    conn: &mut Conn,
    token: usize,
    raw: &[u8],
    ctx: &Ctx,
    inflight_total: &mut usize,
) {
    let Ok(line) = std::str::from_utf8(raw) else {
        // Same wording the v1 reader's BufRead::lines error carries.
        let e = ServeError::Io("stream did not contain valid UTF-8".into());
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.pending.insert(seq, PendingReply::Done(Outcome::error_line(None, &e)));
        return;
    };
    if line.trim().is_empty() {
        return; // no reply slot, exactly like the v1 reader
    }
    let seq = conn.next_seq;
    conn.next_seq += 1;
    match parse_control(line) {
        Some(Ok(op)) => {
            conn.pending.insert(seq, PendingReply::Control(op));
            return;
        }
        Some(Err((id, e))) => {
            conn.pending.insert(seq, PendingReply::Done(Outcome::error_line(id, &e)));
            return;
        }
        None => {}
    }
    let class = ctx.shape.classify_line(line);
    if *inflight_total >= ctx.opts.max_inflight {
        let e = ServeError::Shed { tier: class.tier.name(), cap: ctx.opts.max_inflight };
        ctx.shed_counters[class.tier.index()].inc();
        conn.pending.insert(seq, PendingReply::Done(Outcome::error_line(peek_id(line), &e)));
        return;
    }
    if !conn.admission.admit(class.tier) {
        let e = ServeError::Shed {
            tier: class.tier.name(),
            cap: conn.admission.cap(class.tier),
        };
        ctx.shed_counters[class.tier.index()].inc();
        conn.pending.insert(seq, PendingReply::Done(Outcome::error_line(peek_id(line), &e)));
        return;
    }
    let worker = route_fingerprint(class.route_fp, ctx.worker_count);
    conn.inflight += 1;
    *inflight_total += 1;
    ctx.queue_gauge.add(1);
    let job = Job { token, seq, line: line.to_string(), tier: class.tier };
    if ctx.senders[worker].send(job).is_err() {
        // Worker pool is shutting down; undo the dispatch accounting.
        conn.inflight -= 1;
        *inflight_total -= 1;
        ctx.queue_gauge.add(-1);
        let e = ServeError::Io("worker pool stopped".into());
        conn.pending.insert(seq, PendingReply::Done(Outcome::error_line(peek_id(line), &e)));
    }
}

/// Flushes as much queued output as the socket accepts.
fn write_ready(conn: &mut Conn) {
    while conn.out_pos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true; // EPIPE/reset: the client is gone
                return;
            }
        }
    }
    if conn.out_pos == conn.outbuf.len() {
        conn.outbuf.clear();
        conn.out_pos = 0;
    } else if conn.out_pos > 64 * 1024 {
        conn.outbuf.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
}

/// Drains in-order replies into the output buffer, writes what the
/// socket will take, and updates the backpressure state.
fn advance(conn: &mut Conn, ctx: &Ctx) {
    while let Some(reply) = conn.pending.remove(&conn.next_write) {
        match reply {
            PendingReply::Done(out) => {
                conn.outbuf.extend_from_slice(out.line.as_bytes());
                conn.outbuf.push(b'\n');
                conn.live.tally(&out);
                ctx.global_live.tally(&out);
            }
            PendingReply::Control(ControlOp::Metrics { id }) => {
                // Rendered now, in order: the snapshot covers exactly the
                // requests this connection already got answers for.
                let line = render_metrics(
                    id,
                    &conn.live.snapshot().to_json(),
                    ctx.detached_gauge.value(),
                    &MetricsRegistry::global().snapshot().to_json(),
                );
                conn.outbuf.extend_from_slice(line.as_bytes());
                conn.outbuf.push(b'\n');
            }
        }
        conn.next_write += 1;
    }
    if !conn.dead {
        write_ready(conn);
    }
    // Backpressure: a slow reader's replies pile up here, not without
    // bound — crossing the high-water mark stops reading (and therefore
    // admitting) until the client drains half the buffer.
    if !conn.paused && conn.queued_out() >= ctx.opts.conn_buffer {
        conn.paused = true;
        ctx.pause_counter.inc();
    } else if conn.paused && conn.queued_out() <= ctx.opts.conn_buffer / 2 {
        conn.paused = false;
    }
}
