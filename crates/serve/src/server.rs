//! The thread-per-batch execution model (server v1).
//!
//! [`serve`] reads request lines from any `BufRead`, fans them out over a
//! pool of worker threads, and writes exactly one response line per
//! request to any `Write`, *in request order* regardless of completion
//! order (a reordering buffer keyed by input sequence number sits in front
//! of the writer). All workers share one [`CompileCache`], so duplicate
//! requests in a batch compile once and everything else is a lookup.
//!
//! The per-request pipeline — budgeted execution on detached threads,
//! reply rendering, tallies — lives in the crate's `exec` module and is
//! shared with the event-driven [`crate::event`] server, which replaces this model
//! for TCP serving (this loop blocks one reader thread per stream; the
//! event server multiplexes every connection onto one poller). This
//! blocking loop remains the reference implementation and the stdin/stdout
//! front-end.
//!
//! No request failure, however exotic, kills the loop: every panic-free
//! error path degrades to an `{"ok":false,...}` line.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use epic_bench::CompileCache;
use epic_obs::MetricsRegistry;

use crate::exec::{process, LiveMetrics, Outcome};
use crate::proto::{parse_control, render_metrics, ControlOp};
use crate::ServeError;

pub use crate::exec::{ServerMetrics, DETACHED_WORKERS_GAUGE, REQUEST_LATENCY_HISTOGRAM};

/// Tuning knobs for one [`serve`] loop.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Budget applied to requests that don't set their own `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
    /// Cap on concurrently *abandoned* compile threads (budgeted requests
    /// whose timeout expired while the compile kept running). At the cap,
    /// new budgeted requests are refused with an `overloaded` error instead
    /// of detaching yet another thread, so a storm of timeouts cannot grow
    /// the thread count without bound.
    pub max_detached: usize,
    /// Period of the live metrics heartbeat on stderr; `None` disables it.
    pub heartbeat_ms: Option<u64>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            threads: 0,
            default_timeout_ms: None,
            max_detached: 64,
            heartbeat_ms: None,
        }
    }
}

impl ServerOptions {
    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }
}

/// Serves newline-delimited JSON requests from `reader` until EOF, writing
/// one response line per request to `writer` in request order. Blank lines
/// are skipped. See the module docs for the execution model.
///
/// # Errors
///
/// Only I/O errors on `writer` escape; every request-level failure becomes
/// an `{"ok":false,...}` response line instead.
pub fn serve<R: BufRead + Send, W: Write>(
    reader: R,
    mut writer: W,
    cache: Arc<CompileCache>,
    opts: &ServerOptions,
) -> std::io::Result<ServerMetrics> {
    let workers = opts.worker_count();
    let (tx_req, rx_req) = mpsc::channel::<(u64, String)>();
    let rx_req = Arc::new(Mutex::new(rx_req));
    let (tx_out, rx_out) = mpsc::channel::<(u64, Outcome)>();

    let registry = MetricsRegistry::global();
    let detached_gauge = registry.gauge(DETACHED_WORKERS_GAUGE);
    let latency_hist = registry.histogram(REQUEST_LATENCY_HISTOGRAM);
    let live = Arc::new(LiveMetrics::default());
    let io_result = std::thread::scope(|s| -> std::io::Result<()> {
        let tx_read_err = tx_out.clone();
        s.spawn(move || {
            let mut seq = 0u64;
            let mut lines = reader.lines();
            loop {
                match lines.next() {
                    None => break,
                    Some(Ok(line)) => {
                        if line.trim().is_empty() {
                            continue;
                        }
                        if tx_req.send((seq, line)).is_err() {
                            break;
                        }
                        seq += 1;
                    }
                    Some(Err(e)) => {
                        if e.kind() == std::io::ErrorKind::Interrupted {
                            continue;
                        }
                        // An undecodable line still gets its response slot:
                        // answer it with an `io` error instead of silently
                        // dropping the connection. Invalid UTF-8 poisons
                        // only its own line (`read_line` consumed through
                        // the newline), so keep reading; any other error
                        // means the stream itself is gone.
                        let fatal = e.kind() != std::io::ErrorKind::InvalidData;
                        let out =
                            Outcome::error_line(None, &ServeError::Io(e.to_string()));
                        if tx_read_err.send((seq, out)).is_err() {
                            break;
                        }
                        seq += 1;
                        if fatal {
                            break;
                        }
                    }
                }
            }
            // Dropping tx_req here shuts the workers down after the queue
            // drains.
        });
        for _ in 0..workers {
            let rx_req = Arc::clone(&rx_req);
            let tx_out = tx_out.clone();
            let cache = &cache;
            s.spawn(move || loop {
                let msg = { rx_req.lock().expect("request queue poisoned").recv() };
                let Ok((seq, line)) = msg else { break };
                let outcome = match parse_control(&line) {
                    Some(Ok(op)) => Outcome::control(op),
                    Some(Err((id, e))) => Outcome::error_line(id, &e),
                    None => process(&line, cache, opts.default_timeout_ms, opts.max_detached),
                };
                if tx_out.send((seq, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx_out); // writers below hold the only remaining senders

        // Live heartbeat: periodically report the tallies so far on stderr
        // (the exit report only helps once the batch is over). The channel
        // doubles as an interruptible sleep; dropping the sender stops it.
        let (tx_stop, rx_stop) = mpsc::channel::<()>();
        if let Some(period_ms) = opts.heartbeat_ms {
            let live = Arc::clone(&live);
            let detached = Arc::clone(&detached_gauge);
            let period = Duration::from_millis(period_ms.max(1));
            s.spawn(move || {
                while let Err(mpsc::RecvTimeoutError::Timeout) = rx_stop.recv_timeout(period) {
                    eprintln!(
                        "serve: heartbeat {{\"metrics\":{},\"detached_workers\":{}}}",
                        live.snapshot().to_json(),
                        detached.value()
                    );
                }
            });
        }

        // Reorder completions back into request order.
        let mut pending: HashMap<u64, Outcome> = HashMap::new();
        let mut next = 0u64;
        while let Ok((seq, outcome)) = rx_out.recv() {
            pending.insert(seq, outcome);
            while let Some(out) = pending.remove(&next) {
                match &out.control {
                    Some(ControlOp::Metrics { id }) => {
                        // Rendered here, in order: the snapshot covers
                        // exactly the requests already answered.
                        let line = render_metrics(
                            *id,
                            &live.snapshot().to_json(),
                            detached_gauge.value(),
                            &registry.snapshot().to_json(),
                        );
                        writeln!(writer, "{line}")?;
                    }
                    None => {
                        writeln!(writer, "{}", out.line)?;
                        live.tally(&out);
                        latency_hist.observe((out.ms * 1e3) as u64);
                    }
                }
                writer.flush()?;
                next += 1;
            }
        }
        drop(tx_stop); // stops the heartbeat, if one is running
        Ok(())
    });
    io_result?;
    Ok(live.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_bench::Json;
    use std::time::Instant;

    fn run_batch_with(
        input: &str,
        opts: &ServerOptions,
        cache: &Arc<CompileCache>,
    ) -> (Vec<String>, ServerMetrics) {
        let mut out = Vec::new();
        let metrics = serve(input.as_bytes(), &mut out, Arc::clone(cache), opts).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), metrics)
    }

    fn run_batch(input: &str, opts: &ServerOptions) -> (Vec<String>, ServerMetrics) {
        run_batch_with(input, opts, &Arc::new(CompileCache::new()))
    }

    /// Drops the trailing `,"cache":{...}}` so replies can be compared
    /// across cache-hit and cache-miss servings.
    fn strip_cache(line: &str) -> &str {
        line.rfind(",\"cache\":").map_or(line, |i| &line[..i])
    }

    #[test]
    fn responses_come_back_in_request_order() {
        let input = r#"{"id":10,"workload":"grep"}
{"id":11,"workload":"strcpy"}
{"id":12,"workload":"nonesuch"}
{"id":13,"workload":"wc"}
"#;
        let (lines, metrics) = run_batch(input, &ServerOptions::default());
        assert_eq!(lines.len(), 4);
        let ids: Vec<u64> = lines
            .iter()
            .map(|l| Json::parse(l).unwrap().get("id").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![10, 11, 12, 13]);
        assert!(lines[2].contains("\"unknown-workload\""));
        assert_eq!(metrics.requests, 4);
        assert_eq!(metrics.ok, 3);
        assert_eq!(metrics.errors, 1);
        assert_eq!(metrics.timeouts, 0);
    }

    #[test]
    fn concurrent_identical_requests_are_byte_identical_and_cached() {
        // Eight copies of the same request race on one cache: whatever the
        // interleaving, all responses must be byte-identical modulo the
        // cache counters. (Racing workers may each compute a stage before
        // the first insert lands — the cache keeps one winner — so the
        // split between hits and misses is scheduling-dependent.)
        let line = r#"{"id":1,"workload":"cmp","check":true}"#;
        let input = format!("{}\n", [line; 8].join("\n"));
        let cache = Arc::new(CompileCache::new());
        let opts = ServerOptions { threads: 8, ..ServerOptions::default() };
        let (lines, metrics) = run_batch_with(&input, &opts, &cache);
        assert_eq!(lines.len(), 8);
        for l in &lines {
            assert!(l.contains("\"ok\":true"), "{l}");
            assert_eq!(strip_cache(l), strip_cache(&lines[0]));
        }
        // 3 cached stages per request (superblock, unroll, icbm).
        assert_eq!(metrics.cache_hits + metrics.cache_misses, 8 * 3);
        // A repeat of the batch is fully served from the warm cache, with
        // responses byte-identical to the first pass.
        let (again, metrics2) = run_batch_with(&input, &opts, &cache);
        assert_eq!(metrics2.cache_misses, 0, "warm batch must not recompile");
        assert_eq!(metrics2.cache_hits, 8 * 3);
        for (a, b) in lines.iter().zip(&again) {
            assert_eq!(strip_cache(a), strip_cache(b));
        }
    }

    #[test]
    fn malformed_lines_do_not_stop_the_loop() {
        let input = "this is not json\n{\"id\":2,\"workload\":\"strcpy\"}\n";
        let (lines, metrics) = run_batch(input, &ServerOptions::default());
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"protocol\""));
        assert!(lines[1].contains("\"ok\":true"));
        assert_eq!(metrics.errors, 1);
        assert_eq!(metrics.ok, 1);
    }

    #[test]
    fn zero_budget_times_out_gracefully() {
        let input = r#"{"id":1,"workload":"126.gcc","timeout_ms":0}
{"id":2,"workload":"strcpy"}
"#;
        let (lines, metrics) = run_batch(input, &ServerOptions::default());
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"timeout\""), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);
        assert_eq!(metrics.timeouts, 1);
    }

    #[test]
    fn invalid_utf8_line_answers_and_keeps_reading() {
        // An undecodable middle line must produce its own {"ok":false}
        // reply without killing the rest of the batch (the old reader
        // silently dropped the connection on the first such line).
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"{\"id\":1,\"workload\":\"strcpy\"}\n");
        input.extend_from_slice(b"\xff\xfe{\"id\":2,\"workload\":\"cmp\"}\n");
        input.extend_from_slice(b"{\"id\":3,\"workload\":\"cmp\"}\n");
        let mut out = Vec::new();
        let metrics =
            serve(&input[..], &mut out, Arc::new(CompileCache::new()), &ServerOptions::default())
                .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert!(lines[1].contains("\"kind\":\"io\""), "{}", lines[1]);
        assert!(lines[1].contains("\"ok\":false"), "{}", lines[1]);
        assert!(lines[2].contains("\"ok\":true"), "{}", lines[2]);
        assert_eq!(metrics.requests, 3);
        assert_eq!(metrics.ok, 2);
        assert_eq!(metrics.errors, 1);
    }

    #[test]
    fn detached_worker_cap_refuses_instead_of_spawning() {
        // With a cap of zero every budgeted request is refused up front —
        // the pool can never grow — while unbudgeted requests still run.
        let opts = ServerOptions { max_detached: 0, ..ServerOptions::default() };
        let input = r#"{"id":1,"workload":"strcpy","timeout_ms":60000}
{"id":2,"workload":"strcpy"}
"#;
        let (lines, metrics) = run_batch(input, &opts);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"overloaded\""), "{}", lines[0]);
        assert!(lines[0].contains("cap (0)"), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);
        assert_eq!(metrics.errors, 1);
        assert_eq!(metrics.timeouts, 0, "refusal is not a timeout");
    }

    #[test]
    fn abandoned_workers_release_the_gauge() {
        use epic_obs::MetricsRegistry;
        let gauge = MetricsRegistry::global().gauge(super::DETACHED_WORKERS_GAUGE);
        let before = gauge.value();
        // A zero budget abandons the compile thread immediately; once the
        // small compile finishes it must hand its gauge slot back. (The
        // gauge is global, so only reason about the delta and tolerate
        // other concurrently-running tests' timeouts.)
        let input = "{\"id\":1,\"workload\":\"strcpy\",\"timeout_ms\":0}\n";
        let (lines, metrics) = run_batch(input, &ServerOptions::default());
        assert!(lines[0].contains("\"kind\":\"timeout\""), "{}", lines[0]);
        assert_eq!(metrics.timeouts, 1);
        let deadline = Instant::now() + Duration::from_secs(30);
        while gauge.value() > before && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            gauge.value() <= before,
            "abandoned worker never decremented the gauge: {} -> {}",
            before,
            gauge.value()
        );
    }

    #[test]
    fn metrics_op_reconciles_with_final_tallies() {
        // First line: answered before anything was tallied. Last line:
        // must agree exactly with the ServerMetrics the loop returns.
        let input = r#"{"op":"metrics","id":100}
{"id":1,"workload":"strcpy"}
{"id":2,"workload":"nonesuch"}
{"id":3,"workload":"cmp","check":true}
{"op":"metrics","id":101}
"#;
        let (lines, metrics) = run_batch(input, &ServerOptions::default());
        assert_eq!(lines.len(), 5, "{lines:?}");

        let first = Json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("id").and_then(Json::as_u64), Some(100));
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        let m = first.get("metrics").unwrap();
        assert_eq!(m.get("requests").and_then(Json::as_u64), Some(0));

        let last = Json::parse(&lines[4]).unwrap();
        assert_eq!(last.get("id").and_then(Json::as_u64), Some(101));
        let m = last.get("metrics").unwrap();
        assert_eq!(m.get("requests").and_then(Json::as_u64), Some(metrics.requests));
        assert_eq!(m.get("ok").and_then(Json::as_u64), Some(metrics.ok));
        assert_eq!(m.get("errors").and_then(Json::as_u64), Some(metrics.errors));
        assert_eq!(m.get("timeouts").and_then(Json::as_u64), Some(metrics.timeouts));
        assert_eq!(m.get("cache_hits").and_then(Json::as_u64), Some(metrics.cache_hits));
        assert_eq!(m.get("cache_misses").and_then(Json::as_u64), Some(metrics.cache_misses));
        assert_eq!(m.get("total_ms").and_then(Json::as_f64), Some(metrics.total_ms));
        // Control ops are excluded from the tallies: three compile lines.
        assert_eq!(metrics.requests, 3);
        assert_eq!(metrics.ok, 2);
        assert_eq!(metrics.errors, 1);
        // The registry snapshot rides along and contains the serve
        // instruments this loop registered.
        let reg = last.get("registry").unwrap();
        assert!(reg.get(super::REQUEST_LATENCY_HISTOGRAM).is_some());
        assert!(reg.get(super::DETACHED_WORKERS_GAUGE).is_some());
    }

    #[test]
    fn unknown_op_is_a_protocol_error_with_id() {
        let input = "{\"op\":\"flush\",\"id\":9}\n";
        let (lines, metrics) = run_batch(input, &ServerOptions::default());
        assert_eq!(lines.len(), 1);
        let j = Json::parse(&lines[0]).unwrap();
        assert_eq!(j.get("id").and_then(Json::as_u64), Some(9));
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false));
        assert!(lines[0].contains("unknown op"), "{}", lines[0]);
        assert_eq!(metrics.errors, 1);
    }

    #[test]
    fn replies_carry_ms_and_trace_id() {
        let input = "{\"id\":1,\"workload\":\"strcpy\"}\n";
        let (lines, _) = run_batch(input, &ServerOptions::default());
        let j = Json::parse(&lines[0]).unwrap();
        assert!(j.get("ms").and_then(Json::as_f64).is_some(), "{}", lines[0]);
        let id = j.get("trace_id").and_then(Json::as_str).unwrap();
        assert_eq!(id.len(), 16, "{id}");
        assert!(u64::from_str_radix(id, 16).unwrap() > 0);
    }

    #[test]
    fn inline_ir_compiles_and_checks() {
        let w = epic_workloads::by_name("strcpy").unwrap();
        let ir = epic_bench::timing::json_string(&w.func.to_string());
        // strcpy's entry block initializes its own pointers (src=0,
        // dst=12288), so the inline copy needs the full-size image; give it
        // a sentinel string of its own at address 0.
        let input = format!(
            "{{\"id\":1,\"name\":\"mine\",\"ir\":{ir},\"unroll\":2,\"check\":true,\
             \"input\":{{\"memory_size\":16384,\"memory\":[[0,[104,105,0]]],\"fuel\":100000}}}}\n"
        );
        let (lines, metrics) = run_batch(&input, &ServerOptions::default());
        assert_eq!(lines.len(), 1, "{lines:?}");
        let j = Json::parse(&lines[0]).unwrap();
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true), "{}", lines[0]);
        assert_eq!(
            j.get("result").and_then(|r| r.get("name")).and_then(Json::as_str),
            Some("mine")
        );
        assert_eq!(metrics.ok, 1);
    }
}
