//! The batch-compile execution model.
//!
//! [`serve`] reads request lines from any `BufRead`, fans them out over a
//! pool of worker threads, and writes exactly one response line per
//! request to any `Write`, *in request order* regardless of completion
//! order (a reordering buffer keyed by input sequence number sits in front
//! of the writer). All workers share one [`CompileCache`], so duplicate
//! requests in a batch compile once and everything else is a lookup.
//!
//! A request with a wall-clock budget (its own `timeout_ms`, or the server
//! default) runs on a detached thread; if the budget expires the worker
//! answers with a `timeout` error and moves on — the abandoned compile
//! finishes in the background and may still warm the cache for a retry.
//! No request failure, however exotic, kills the loop: every panic-free
//! error path degrades to an `{"ok":false,...}` line.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use epic_bench::{check_equivalence, compile_cached, CompileCache, Pipeline};
use epic_interp::diff_test;

use crate::proto::{render_err, render_ok, result_json, Request, Target};
use crate::ServeError;

/// Tuning knobs for one [`serve`] loop.
#[derive(Clone, Debug, Default)]
pub struct ServerOptions {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Budget applied to requests that don't set their own `timeout_ms`.
    pub default_timeout_ms: Option<u64>,
}

impl ServerOptions {
    fn worker_count(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }
}

/// What one [`serve`] loop did, reported once at shutdown.
#[derive(Clone, Debug, Default)]
pub struct ServerMetrics {
    /// Request lines answered.
    pub requests: u64,
    /// ... of which succeeded.
    pub ok: u64,
    /// ... of which failed (including timeouts).
    pub errors: u64,
    /// ... of which timed out specifically.
    pub timeouts: u64,
    /// Stage lookups served from the cache, summed over all requests.
    pub cache_hits: u64,
    /// Stage lookups that computed, summed over all requests.
    pub cache_misses: u64,
    /// Total request latency (sum over requests), milliseconds.
    pub total_ms: f64,
    /// Worst single-request latency, milliseconds.
    pub max_ms: f64,
}

impl ServerMetrics {
    /// Stable JSON rendering for the shutdown report.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"ok\":{},\"errors\":{},\"timeouts\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\
             \"total_ms\":{:.3},\"max_ms\":{:.3}}}",
            self.requests,
            self.ok,
            self.errors,
            self.timeouts,
            self.cache_hits,
            self.cache_misses,
            self.total_ms,
            self.max_ms
        )
    }
}

/// A finished compile, reduced to what the response needs.
struct Summary {
    result: String,
    hits: u64,
    misses: u64,
}

/// Runs the pipeline for one request. Owns everything it touches so it can
/// be shipped to a detached thread when a timeout budget applies.
fn execute(req: &Request, cache: &CompileCache) -> Result<Summary, ServeError> {
    match &req.target {
        Target::Workload(name) => {
            let w = epic_workloads::by_name(name)
                .ok_or_else(|| ServeError::UnknownWorkload(name.clone()))?;
            let c = compile_cached(&w, &req.cfg, cache)?;
            if req.check {
                check_equivalence(&w, &c).map_err(epic_bench::CompileError::Diff)?;
            }
            Ok(Summary {
                result: result_json(w.name, &c, req.emit_ir),
                hits: c.cache_hits,
                misses: c.cache_misses,
            })
        }
        Target::Inline(t) => {
            let c = Pipeline::for_function(&t.name, &t.func, &t.input, t.unroll, &req.cfg)
                .with_cache(cache)
                .if_convert()?
                .superblock()?
                .unroll()?
                .frp()?
                .icbm()?;
            if req.check {
                diff_test(&t.func, &c.baseline, &t.input)
                    .map_err(epic_bench::CompileError::Diff)?;
                diff_test(&t.func, &c.optimized, &t.input)
                    .map_err(epic_bench::CompileError::Diff)?;
            }
            Ok(Summary {
                result: result_json(&t.name, &c, req.emit_ir),
                hits: c.cache_hits,
                misses: c.cache_misses,
            })
        }
    }
}

/// `execute` under a wall-clock budget: the compile runs on a detached
/// thread and an expired budget abandons it (it keeps warming the cache).
fn execute_with_budget(
    req: Request,
    cache: &Arc<CompileCache>,
    budget_ms: Option<u64>,
) -> Result<Summary, ServeError> {
    let Some(ms) = budget_ms else {
        return execute(&req, cache);
    };
    let (tx, rx) = mpsc::channel();
    let cache = Arc::clone(cache);
    std::thread::spawn(move || {
        // The receiver is gone iff the budget already expired; the result
        // is then simply dropped along with this thread.
        let _ = tx.send(execute(&req, &cache));
    });
    match rx.recv_timeout(Duration::from_millis(ms)) {
        Ok(res) => res,
        Err(_) => Err(ServeError::Timeout(ms)),
    }
}

/// One response line plus the accounting the writer tallies.
struct Outcome {
    line: String,
    ok: bool,
    timed_out: bool,
    hits: u64,
    misses: u64,
    ms: f64,
}

fn process(line: &str, cache: &Arc<CompileCache>, opts: &ServerOptions) -> Outcome {
    let t0 = Instant::now();
    let (id, res) = match Request::parse(line) {
        Err(e) => (None, Err(e)),
        Ok(req) => {
            let id = req.id;
            let budget = req.timeout_ms.or(opts.default_timeout_ms);
            (id, execute_with_budget(req, cache, budget))
        }
    };
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    match res {
        Ok(s) => Outcome {
            line: render_ok(id, &s.result, s.hits, s.misses),
            ok: true,
            timed_out: false,
            hits: s.hits,
            misses: s.misses,
            ms,
        },
        Err(e) => Outcome {
            line: render_err(id, &e, 0, 0),
            ok: false,
            timed_out: matches!(e, ServeError::Timeout(_)),
            hits: 0,
            misses: 0,
            ms,
        },
    }
}

/// Serves newline-delimited JSON requests from `reader` until EOF, writing
/// one response line per request to `writer` in request order. Blank lines
/// are skipped. See the module docs for the execution model.
///
/// # Errors
///
/// Only I/O errors on `writer` escape; every request-level failure becomes
/// an `{"ok":false,...}` response line instead.
pub fn serve<R: BufRead + Send, W: Write>(
    reader: R,
    mut writer: W,
    cache: Arc<CompileCache>,
    opts: &ServerOptions,
) -> std::io::Result<ServerMetrics> {
    let workers = opts.worker_count();
    let (tx_req, rx_req) = mpsc::channel::<(u64, String)>();
    let rx_req = Arc::new(Mutex::new(rx_req));
    let (tx_out, rx_out) = mpsc::channel::<(u64, Outcome)>();

    let mut metrics = ServerMetrics::default();
    let io_result = std::thread::scope(|s| -> std::io::Result<()> {
        s.spawn(move || {
            let mut seq = 0u64;
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                if tx_req.send((seq, line)).is_err() {
                    break;
                }
                seq += 1;
            }
            // Dropping tx_req here shuts the workers down after the queue
            // drains.
        });
        for _ in 0..workers {
            let rx_req = Arc::clone(&rx_req);
            let tx_out = tx_out.clone();
            let cache = &cache;
            s.spawn(move || loop {
                let msg = { rx_req.lock().expect("request queue poisoned").recv() };
                let Ok((seq, line)) = msg else { break };
                let outcome = process(&line, cache, opts);
                if tx_out.send((seq, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx_out); // writers below hold the only remaining senders

        // Reorder completions back into request order.
        let mut pending: HashMap<u64, Outcome> = HashMap::new();
        let mut next = 0u64;
        while let Ok((seq, outcome)) = rx_out.recv() {
            pending.insert(seq, outcome);
            while let Some(out) = pending.remove(&next) {
                writeln!(writer, "{}", out.line)?;
                writer.flush()?;
                metrics.requests += 1;
                if out.ok {
                    metrics.ok += 1;
                } else {
                    metrics.errors += 1;
                }
                if out.timed_out {
                    metrics.timeouts += 1;
                }
                metrics.cache_hits += out.hits;
                metrics.cache_misses += out.misses;
                metrics.total_ms += out.ms;
                metrics.max_ms = metrics.max_ms.max(out.ms);
                next += 1;
            }
        }
        Ok(())
    });
    io_result?;
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_bench::Json;

    fn run_batch_with(
        input: &str,
        opts: &ServerOptions,
        cache: &Arc<CompileCache>,
    ) -> (Vec<String>, ServerMetrics) {
        let mut out = Vec::new();
        let metrics = serve(input.as_bytes(), &mut out, Arc::clone(cache), opts).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), metrics)
    }

    fn run_batch(input: &str, opts: &ServerOptions) -> (Vec<String>, ServerMetrics) {
        run_batch_with(input, opts, &Arc::new(CompileCache::new()))
    }

    /// Drops the trailing `,"cache":{...}}` so replies can be compared
    /// across cache-hit and cache-miss servings.
    fn strip_cache(line: &str) -> &str {
        line.rfind(",\"cache\":").map_or(line, |i| &line[..i])
    }

    #[test]
    fn responses_come_back_in_request_order() {
        let input = r#"{"id":10,"workload":"grep"}
{"id":11,"workload":"strcpy"}
{"id":12,"workload":"nonesuch"}
{"id":13,"workload":"wc"}
"#;
        let (lines, metrics) = run_batch(input, &ServerOptions::default());
        assert_eq!(lines.len(), 4);
        let ids: Vec<u64> = lines
            .iter()
            .map(|l| Json::parse(l).unwrap().get("id").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![10, 11, 12, 13]);
        assert!(lines[2].contains("\"unknown-workload\""));
        assert_eq!(metrics.requests, 4);
        assert_eq!(metrics.ok, 3);
        assert_eq!(metrics.errors, 1);
        assert_eq!(metrics.timeouts, 0);
    }

    #[test]
    fn concurrent_identical_requests_are_byte_identical_and_cached() {
        // Eight copies of the same request race on one cache: whatever the
        // interleaving, all responses must be byte-identical modulo the
        // cache counters. (Racing workers may each compute a stage before
        // the first insert lands — the cache keeps one winner — so the
        // split between hits and misses is scheduling-dependent.)
        let line = r#"{"id":1,"workload":"cmp","check":true}"#;
        let input = format!("{}\n", [line; 8].join("\n"));
        let cache = Arc::new(CompileCache::new());
        let opts = ServerOptions { threads: 8, default_timeout_ms: None };
        let (lines, metrics) = run_batch_with(&input, &opts, &cache);
        assert_eq!(lines.len(), 8);
        for l in &lines {
            assert!(l.contains("\"ok\":true"), "{l}");
            assert_eq!(strip_cache(l), strip_cache(&lines[0]));
        }
        // 3 cached stages per request (superblock, unroll, icbm).
        assert_eq!(metrics.cache_hits + metrics.cache_misses, 8 * 3);
        // A repeat of the batch is fully served from the warm cache, with
        // responses byte-identical to the first pass.
        let (again, metrics2) = run_batch_with(&input, &opts, &cache);
        assert_eq!(metrics2.cache_misses, 0, "warm batch must not recompile");
        assert_eq!(metrics2.cache_hits, 8 * 3);
        for (a, b) in lines.iter().zip(&again) {
            assert_eq!(strip_cache(a), strip_cache(b));
        }
    }

    #[test]
    fn malformed_lines_do_not_stop_the_loop() {
        let input = "this is not json\n{\"id\":2,\"workload\":\"strcpy\"}\n";
        let (lines, metrics) = run_batch(input, &ServerOptions::default());
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"protocol\""));
        assert!(lines[1].contains("\"ok\":true"));
        assert_eq!(metrics.errors, 1);
        assert_eq!(metrics.ok, 1);
    }

    #[test]
    fn zero_budget_times_out_gracefully() {
        let input = r#"{"id":1,"workload":"126.gcc","timeout_ms":0}
{"id":2,"workload":"strcpy"}
"#;
        let (lines, metrics) = run_batch(input, &ServerOptions::default());
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"timeout\""), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);
        assert_eq!(metrics.timeouts, 1);
    }

    #[test]
    fn inline_ir_compiles_and_checks() {
        let w = epic_workloads::by_name("strcpy").unwrap();
        let ir = epic_bench::timing::json_string(&w.func.to_string());
        // strcpy's entry block initializes its own pointers (src=0,
        // dst=12288), so the inline copy needs the full-size image; give it
        // a sentinel string of its own at address 0.
        let input = format!(
            "{{\"id\":1,\"name\":\"mine\",\"ir\":{ir},\"unroll\":2,\"check\":true,\
             \"input\":{{\"memory_size\":16384,\"memory\":[[0,[104,105,0]]],\"fuel\":100000}}}}\n"
        );
        let (lines, metrics) = run_batch(&input, &ServerOptions::default());
        assert_eq!(lines.len(), 1, "{lines:?}");
        let j = Json::parse(&lines[0]).unwrap();
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true), "{}", lines[0]);
        assert_eq!(
            j.get("result").and_then(|r| r.get("name")).and_then(Json::as_str),
            Some("mine")
        );
        assert_eq!(metrics.ok, 1);
    }
}
