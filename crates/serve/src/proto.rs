//! The NDJSON wire format.
//!
//! One request per line. The minimal request compiles a suite workload
//! under the default configuration:
//!
//! ```json
//! {"id":1,"workload":"strcpy"}
//! ```
//!
//! Inline IR ships the program text and its profiling input instead:
//!
//! ```json
//! {"id":2,"name":"mine","ir":"fn mine { ... }",
//!  "input":{"memory_size":64,"memory":[[0,[1,2,0]]],"regs":[[0,7]],"fuel":100000},
//!  "unroll":2}
//! ```
//!
//! Optional keys on either form: `"config"` (partial overrides of the
//! default [`PipelineConfig`], grouped `{"trace":{..},"cpr":{..},
//! "if_convert":{..}|null,"meld":{..}|null,"machine":{..}}` — a present
//! `meld` group enables the instruction-melding pass, and the `machine`
//! group reaches the front-end cost model through
//! `"frontend.mispredict_penalty"` / `"frontend.fetch_width"`),
//! `"timeout_ms"`, `"check"` (differentially
//! test the compiled pair before answering), `"emit_ir"` (include the
//! compiled IR text in the result).
//!
//! Each response is one line. Success:
//!
//! ```json
//! {"id":1,"ok":true,"result":{"name":"strcpy","baseline":{...},
//!  "optimized":{...},"stats":{...}},"cache":{"hits":3,"misses":0}}
//! ```
//!
//! Failure: `{"id":1,"ok":false,"error":{"kind":...,"message":...},
//! "cache":{...},...}`. The `result` object is a pure function of the
//! compiled artifacts — byte-identical across served-from-cache and
//! recomputed replies — while everything after it reports what this
//! request actually did: the `cache` object, the wall-clock `"ms"`, and
//! the request's `"trace_id"` (the id every span recorded while serving
//! the request carries, so a `--trace` export can be grouped per request).
//!
//! ## Control requests
//!
//! A line whose object carries an `"op"` key is a *control request*: it is
//! answered in request order like any other line but never compiles
//! anything and is not counted in the server's request tallies.
//! `{"op":"metrics","id":9}` returns a live snapshot of the server's
//! tallies and of the process-wide metrics registry:
//!
//! ```json
//! {"id":9,"ok":true,"metrics":{"requests":...,"ok":...,...},
//!  "detached_workers":0,"registry":{"compile_cache_hits_total":{...},...}}
//! ```
//!
//! Because the reply is rendered by the writer when its turn in the
//! response order comes up, the tallies it reports account for exactly the
//! requests answered before it on the stream — a metrics op sent last sees
//! precisely the totals the server prints at shutdown.

use epic_bench::timing::json_string;
use epic_bench::{Compiled, ConfigDelta, Json, KnobSpace, PipelineConfig};
use epic_interp::Input;
use epic_ir::{parse_function, Function, Reg};
use epic_perf::OpCounts;

use crate::ServeError;

/// What to compile: a suite workload by name, or inline IR.
#[derive(Debug)]
pub enum Target {
    /// A workload from `epic_workloads::all()`.
    Workload(String),
    /// An inline program with its profiling input (boxed: a parsed
    /// [`Function`] dwarfs the name-only variant).
    Inline(Box<InlineTarget>),
}

/// An inline program submitted over the wire.
#[derive(Debug)]
pub struct InlineTarget {
    /// Display name (used in timings and the result object).
    pub name: String,
    /// The parsed program.
    pub func: Function,
    /// Training input driving every profiling stage.
    pub input: Input,
    /// Hot-loop unroll factor.
    pub unroll: u32,
}

/// One parsed batch-compile request.
#[derive(Debug)]
pub struct Request {
    /// Echoed back verbatim in the response (`null` when absent).
    pub id: Option<u64>,
    /// What to compile.
    pub target: Target,
    /// Fully-resolved pipeline configuration (defaults + overrides).
    pub cfg: PipelineConfig,
    /// Per-request wall-clock budget; `None` defers to the server default.
    pub timeout_ms: Option<u64>,
    /// Differentially test baseline and optimized against the source.
    pub check: bool,
    /// Include the compiled IR text in the result object.
    pub emit_ir: bool,
}

/// One parsed control request (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlOp {
    /// `{"op":"metrics"}`: report the server's live tallies plus a
    /// process-wide metrics-registry snapshot.
    Metrics {
        /// Echoed back verbatim (`null` when absent), like a compile id.
        id: Option<u64>,
    },
}

/// Classifies `line` as a control request, if it is one.
///
/// Returns `None` for anything that is not a control request — including
/// lines that are not valid JSON — so the caller falls through to
/// [`Request::parse`] and its error reporting. A line that *is* a control
/// attempt (has an `"op"` key) but is malformed or names an unknown op
/// yields the id (for the reply) and a protocol error.
pub fn parse_control(line: &str) -> Option<Result<ControlOp, (Option<u64>, ServeError)>> {
    let j = Json::parse(line).ok()?;
    let op = j.get("op")?;
    let id = j.get("id").and_then(Json::as_u64);
    let Some(op) = op.as_str() else {
        return Some(Err((id, ServeError::Protocol("\"op\" must be a string".into()))));
    };
    match op {
        "metrics" => Some(Ok(ControlOp::Metrics { id })),
        other => Some(Err((
            id,
            ServeError::Protocol(format!("unknown op \"{other}\" (supported: \"metrics\")")),
        ))),
    }
}

/// Best-effort extraction of the request's `"id"` without a full JSON
/// parse. The event server's admission layer sheds requests *before*
/// parsing them (that is the point of shedding), but the `overloaded`
/// reply should still echo the id when one is plainly present. A miss
/// just means the reply carries `"id":null`.
pub fn peek_id(line: &str) -> Option<u64> {
    let i = line.find("\"id\"")?;
    let rest = line[i + 4..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn want_u64(j: &Json, key: &str) -> Result<Option<u64>, ServeError> {
    match j.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ServeError::Protocol(format!("\"{key}\" must be a non-negative integer"))),
    }
}

fn want_bool(j: &Json, key: &str) -> Result<Option<bool>, ServeError> {
    match j.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| ServeError::Protocol(format!("\"{key}\" must be a boolean"))),
    }
}

fn want_str<'j>(j: &'j Json, key: &str) -> Result<Option<&'j str>, ServeError> {
    match j.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ServeError::Protocol(format!("\"{key}\" must be a string"))),
    }
}

fn parse_input(j: &Json) -> Result<Input, ServeError> {
    let mut input = Input::new();
    let mut size = 0usize;
    if let Some(n) = want_u64(j, "memory_size")? {
        size = n as usize;
        input = input.memory_size(size);
    }
    if let Some(mem) = j.get("memory") {
        let entries = mem
            .as_arr()
            .ok_or_else(|| ServeError::Protocol("\"memory\" must be an array".into()))?;
        for entry in entries {
            let pair = entry.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                ServeError::Protocol("\"memory\" entries must be [addr, [values...]]".into())
            })?;
            let addr = pair[0]
                .as_u64()
                .ok_or_else(|| ServeError::Protocol("memory addr must be an integer".into()))?
                as usize;
            let vals = pair[1]
                .as_arr()
                .ok_or_else(|| ServeError::Protocol("memory values must be an array".into()))?
                .iter()
                .map(|v| {
                    v.as_i64()
                        .ok_or_else(|| ServeError::Protocol("memory value must be an integer".into()))
                })
                .collect::<Result<Vec<i64>, _>>()?;
            if addr + vals.len() > size {
                return Err(ServeError::Protocol(format!(
                    "memory write at {addr}+{} exceeds memory_size {size}",
                    vals.len()
                )));
            }
            input = input.with_memory(addr, &vals);
        }
    }
    if let Some(regs) = j.get("regs") {
        let entries = regs
            .as_arr()
            .ok_or_else(|| ServeError::Protocol("\"regs\" must be an array".into()))?;
        for entry in entries {
            let pair = entry.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                ServeError::Protocol("\"regs\" entries must be [reg, value]".into())
            })?;
            let r = pair[0]
                .as_u64()
                .ok_or_else(|| ServeError::Protocol("reg index must be an integer".into()))?;
            let v = pair[1]
                .as_i64()
                .ok_or_else(|| ServeError::Protocol("reg value must be an integer".into()))?;
            input = input.with_reg(Reg(r as u32), v);
        }
    }
    if let Some(fuel) = want_u64(j, "fuel")? {
        input = input.fuel(fuel);
    }
    Ok(input)
}

/// Resolves the request's partial `"config"` overrides through the typed
/// knob registry ([`KnobSpace`]): the grouped wire shape parses into a
/// [`ConfigDelta`] (which validates every knob by name, type and range)
/// and the delta is applied over the paper defaults. Unknown or
/// out-of-range knobs are rejected with structured `bad_knob` /
/// `out_of_range` errors naming the knob; `machine.*` knobs — valid in the
/// registry, meaningless to a compile request — are rejected too.
fn parse_config(j: Option<&Json>) -> Result<PipelineConfig, ServeError> {
    let Some(j) = j else { return Ok(PipelineConfig::default()) };
    let space = KnobSpace::global();
    let delta = ConfigDelta::from_grouped_json(space, j)?;
    if delta.touches_machine(space) {
        return Err(ServeError::Protocol(
            "\"machine\" knobs are not accepted here: compile requests have no machine".into(),
        ));
    }
    Ok(delta.apply(space).pipeline)
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for malformed JSON or ill-typed fields;
    /// [`ServeError::Compile`] (parse kind) for bad inline IR.
    pub fn parse(line: &str) -> Result<Request, ServeError> {
        let j = Json::parse(line)?;
        if !matches!(j, Json::Obj(_)) {
            return Err(ServeError::Protocol("request must be a JSON object".into()));
        }
        let id = want_u64(&j, "id")?;
        let target = match (want_str(&j, "workload")?, want_str(&j, "ir")?) {
            (Some(_), Some(_)) => {
                return Err(ServeError::Protocol(
                    "request has both \"workload\" and \"ir\"; pick one".into(),
                ))
            }
            (Some(name), None) => Target::Workload(name.to_string()),
            (None, Some(ir)) => {
                let func = parse_function(ir)?;
                epic_ir::verify(&func).map_err(epic_bench::CompileError::Verify)?;
                let input = match j.get("input") {
                    Some(spec) => parse_input(spec)?,
                    None => Input::new(),
                };
                let name =
                    want_str(&j, "name")?.unwrap_or("inline").to_string();
                let unroll = want_u64(&j, "unroll")?.unwrap_or(1) as u32;
                Target::Inline(Box::new(InlineTarget { name, func, input, unroll }))
            }
            (None, None) => {
                return Err(ServeError::Protocol(
                    "request needs \"workload\" or \"ir\"".into(),
                ))
            }
        };
        Ok(Request {
            id,
            target,
            cfg: parse_config(j.get("config"))?,
            timeout_ms: want_u64(&j, "timeout_ms")?,
            check: want_bool(&j, "check")?.unwrap_or(false),
            emit_ir: want_bool(&j, "emit_ir")?.unwrap_or(false),
        })
    }
}

fn counts_json(c: &OpCounts) -> String {
    format!(
        "{{\"static_ops\":{},\"static_branches\":{},\"dynamic_ops\":{},\"dynamic_branches\":{}}}",
        c.static_ops, c.static_branches, c.dynamic_ops, c.dynamic_branches
    )
}

/// Renders the deterministic `result` object for a successful compile.
/// Contains only artifact-derived data (no wall-clock), so cache-served
/// and freshly-computed replies are byte-identical.
pub fn result_json(name: &str, c: &Compiled, emit_ir: bool) -> String {
    let s = &c.stats;
    let mut out = format!(
        "{{\"name\":{},\"baseline\":{},\"optimized\":{},\"stats\":{{\
         \"hyperblocks\":{},\"cpr_blocks\":{},\"taken_blocks\":{},\
         \"branches_collapsed\":{},\"skipped\":{},\"promoted\":{},\
         \"demoted\":{},\"dce_removed\":{}}}",
        json_string(name),
        counts_json(&c.base_counts),
        counts_json(&c.opt_counts),
        s.hyperblocks,
        s.cpr_blocks,
        s.taken_blocks,
        s.branches_collapsed,
        s.skipped,
        s.promoted,
        s.demoted,
        s.dce_removed,
    );
    if emit_ir {
        out.push_str(&format!(
            ",\"ir\":{{\"baseline\":{},\"optimized\":{}}}",
            json_string(&c.baseline.to_string()),
            json_string(&c.optimized.to_string())
        ));
    }
    out.push('}');
    out
}

fn id_json(id: Option<u64>) -> String {
    id.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// The per-request observability suffix shared by both reply shapes. Kept
/// strictly *after* the `cache` object so consumers that truncate a reply
/// at `,"cache":` to compare deterministic prefixes stay correct.
fn obs_suffix(ms: f64, trace_id: u64) -> String {
    format!(",\"ms\":{ms:.3},\"trace_id\":\"{trace_id:016x}\"")
}

/// Renders a success response line (without the trailing newline).
pub fn render_ok(
    id: Option<u64>,
    result: &str,
    hits: u64,
    misses: u64,
    ms: f64,
    trace_id: u64,
) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"result\":{},\"cache\":{{\"hits\":{},\"misses\":{}}}{}}}",
        id_json(id),
        result,
        hits,
        misses,
        obs_suffix(ms, trace_id)
    )
}

/// Renders a failure response line (without the trailing newline).
pub fn render_err(
    id: Option<u64>,
    err: &ServeError,
    hits: u64,
    misses: u64,
    ms: f64,
    trace_id: u64,
) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"error\":{},\"cache\":{{\"hits\":{},\"misses\":{}}}{}}}",
        id_json(id),
        err.to_json(),
        hits,
        misses,
        obs_suffix(ms, trace_id)
    )
}

/// Renders the reply to a `{"op":"metrics"}` control request.
/// `metrics_json` is the server's live tally object and `registry_json`
/// the process-wide registry snapshot (both already rendered).
pub fn render_metrics(
    id: Option<u64>,
    metrics_json: &str,
    detached_workers: i64,
    registry_json: &str,
) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"metrics\":{},\"detached_workers\":{},\"registry\":{}}}",
        id_json(id),
        metrics_json,
        detached_workers,
        registry_json
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_workload_request() {
        let r = Request::parse(r#"{"id":7,"workload":"strcpy"}"#).unwrap();
        assert_eq!(r.id, Some(7));
        assert!(matches!(r.target, Target::Workload(ref n) if n == "strcpy"));
        assert_eq!(r.timeout_ms, None);
        assert!(!r.check);
    }

    #[test]
    fn config_overrides_apply_partially() {
        let r = Request::parse(
            r#"{"workload":"wc","config":{"cpr":{"speculate":false},"trace":{"min_count":4},"if_convert":{}}}"#,
        )
        .unwrap();
        assert!(!r.cfg.cpr.speculate);
        assert_eq!(r.cfg.trace.min_count, 4);
        // Untouched fields keep their defaults.
        let d = PipelineConfig::default();
        assert_eq!(r.cfg.cpr.exit_weight_threshold, d.cpr.exit_weight_threshold);
        assert_eq!(r.cfg.trace.max_ops, d.trace.max_ops);
        assert!(r.cfg.if_convert.is_some());
        assert!(r.cfg.meld.is_none(), "absent meld group leaves melding off");

        // A present meld group enables the pass with partial overrides.
        let r = Request::parse(r#"{"workload":"wc","config":{"meld":{"max_ops":8}}}"#).unwrap();
        assert_eq!(r.cfg.meld.map(|m| m.max_ops), Some(8));
    }

    #[test]
    fn config_knob_errors_are_structured_and_name_the_knob() {
        let e = Request::parse(r#"{"workload":"wc","config":{"trace":{"max_blocks":6}}}"#)
            .unwrap_err();
        assert_eq!(e.kind(), "bad_knob");
        assert!(e.to_json().contains("\"knob\":\"trace.max_blocks\""), "{}", e.to_json());

        let e = Request::parse(r#"{"workload":"wc","config":{"trace":{"min_prob":1.5}}}"#)
            .unwrap_err();
        assert_eq!(e.kind(), "out_of_range");
        assert!(e.to_json().contains("\"knob\":\"trace.min_prob\""), "{}", e.to_json());

        let e = Request::parse(r#"{"workload":"wc","config":{"cpr":{"speculate":3}}}"#)
            .unwrap_err();
        assert_eq!(e.kind(), "bad_knob");
        assert!(e.to_json().contains("\"knob\":\"cpr.speculate\""), "{}", e.to_json());

        // Non-object configs keep the historical protocol error.
        let e = Request::parse(r#"{"workload":"wc","config":5}"#).unwrap_err();
        assert_eq!(e.kind(), "protocol");
        assert!(e.to_string().contains("\"config\" must be an object"), "{e}");

        // Machine knobs exist in the registry but have no meaning on a
        // compile request.
        let e = Request::parse(r#"{"workload":"wc","config":{"machine":{"int_width":8}}}"#)
            .unwrap_err();
        assert_eq!(e.kind(), "protocol");
    }

    #[test]
    fn inline_ir_request_parses() {
        let w = epic_workloads::by_name("strcpy").unwrap();
        let ir = w.func.to_string();
        let line = format!(
            "{{\"id\":1,\"name\":\"mine\",\"ir\":{},\"input\":{{\"memory_size\":8,\"memory\":[[0,[1,2,0]]],\"regs\":[[0,3]],\"fuel\":1000}},\"unroll\":2}}",
            json_string(&ir)
        );
        let r = Request::parse(&line).unwrap();
        let Target::Inline(t) = r.target else {
            panic!("expected inline target");
        };
        assert_eq!(t.name, "mine");
        assert_eq!(t.unroll, 2);
        assert_eq!(t.input.fuel_budget(), 1000);
        assert_eq!(t.func.fingerprint(), w.func.fingerprint());
    }

    #[test]
    fn bad_requests_are_protocol_errors() {
        for line in [
            "not json",
            "[]",
            r#"{"id":1}"#,
            r#"{"workload":"x","ir":"fn f {}"}"#,
            r#"{"workload":5}"#,
            r#"{"workload":"wc","timeout_ms":-3}"#,
        ] {
            let e = Request::parse(line).unwrap_err();
            assert_eq!(e.kind(), "protocol", "{line}: {e}");
        }
        // A memory write beyond the declared image is rejected before it
        // can panic the input builder (the IR itself is fine here).
        let ir = json_string(&epic_workloads::by_name("strcpy").unwrap().func.to_string());
        let line = format!("{{\"ir\":{ir},\"input\":{{\"memory_size\":2,\"memory\":[[1,[1,2]]]}}}}");
        let e = Request::parse(&line).unwrap_err();
        assert_eq!(e.kind(), "protocol", "{e}");
        assert!(e.to_string().contains("exceeds memory_size"), "{e}");
        // Bad inline IR is a parse error, not a protocol error.
        let e = Request::parse(r#"{"ir":"fn oops {"}"#).unwrap_err();
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn response_rendering_round_trips() {
        let line = render_err(Some(3), &ServeError::UnknownWorkload("x".into()), 0, 0, 1.25, 7);
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            j.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("unknown-workload")
        );
        assert_eq!(j.get("ms").and_then(Json::as_f64), Some(1.25));
        assert_eq!(j.get("trace_id").and_then(Json::as_str), Some("0000000000000007"));
        let line = render_ok(None, "{\"name\":\"x\"}", 2, 1, 0.5, 0x1f);
        let j = Json::parse(&line).unwrap();
        assert!(matches!(j.get("id"), Some(Json::Null)));
        assert_eq!(j.get("cache").and_then(|c| c.get("hits")).and_then(Json::as_u64), Some(2));
        // The observability suffix sits after the cache object, so
        // truncating at `,"cache":` still yields the deterministic prefix.
        let i = line.rfind(",\"cache\":").unwrap();
        assert!(line[..i].ends_with("\"name\":\"x\"}"), "{line}");
        assert_eq!(j.get("trace_id").and_then(Json::as_str), Some("000000000000001f"));
    }

    #[test]
    fn control_ops_parse_and_misparse() {
        let op = parse_control(r#"{"op":"metrics","id":4}"#).unwrap().unwrap();
        assert_eq!(op, ControlOp::Metrics { id: Some(4) });
        let op = parse_control(r#"{"op":"metrics"}"#).unwrap().unwrap();
        assert_eq!(op, ControlOp::Metrics { id: None });

        // Not control requests at all: fall through to Request::parse.
        assert!(parse_control(r#"{"workload":"wc"}"#).is_none());
        assert!(parse_control("not json").is_none());

        // Control attempts with problems keep their id for the reply.
        let (id, e) = parse_control(r#"{"op":"reload","id":8}"#).unwrap().unwrap_err();
        assert_eq!(id, Some(8));
        assert_eq!(e.kind(), "protocol");
        assert!(e.to_string().contains("unknown op \"reload\""), "{e}");
        let (id, e) = parse_control(r#"{"op":7}"#).unwrap().unwrap_err();
        assert_eq!(id, None);
        assert_eq!(e.kind(), "protocol");

        let line = render_metrics(Some(4), "{\"requests\":2}", 1, "{}");
        let j = Json::parse(&line).unwrap();
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            j.get("metrics").and_then(|m| m.get("requests")).and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(j.get("detached_workers").and_then(Json::as_i64), Some(1));
    }
}
