//! # epic-serve
//!
//! A long-running batch-compile service over the cached pipeline.
//!
//! The server speaks newline-delimited JSON: each request line names a
//! suite workload (or carries inline IR text plus an input), optionally
//! overrides the [`PipelineConfig`](epic_bench::PipelineConfig), and gets
//! exactly one response line back, in request order. Requests fan out over
//! a worker pool and every pipeline stage is served from a shared
//! [`CompileCache`](epic_bench::CompileCache), so a batch that repeats
//! inputs (or overlaps configurations) recompiles nothing.
//!
//! Failures — malformed JSON, unknown workloads, IR parse errors,
//! interpreter traps, per-request timeouts — produce a structured
//! `{"ok":false,"error":{...}}` reply on the offending line and never take
//! the process down.
//!
//! See [`proto`] for the wire format and [`server`] for the execution
//! model; the `serve` binary fronts both over stdin/stdout or TCP.

pub mod event;
mod exec;
pub mod poller;
pub mod proto;
pub mod server;
pub mod shape;

use std::error::Error;
use std::fmt;

use epic_bench::timing::json_string;
use epic_bench::{CompileError, JsonError, KnobError};

pub use event::{EventOptions, EventServer, ShutdownHandle};
pub use proto::{ControlOp, InlineTarget, Request, Target};
pub use server::{serve, ServerMetrics, ServerOptions};
pub use shape::{Admission, Classified, Shape, ShapeTable, Tier};

/// Any failure of one batch-compile request.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The compilation pipeline itself failed.
    Compile(CompileError),
    /// The request line was not a valid request (bad JSON, missing or
    /// ill-typed fields).
    Protocol(String),
    /// The request named a workload the suite does not contain.
    UnknownWorkload(String),
    /// The request exceeded its wall-clock budget. The abandoned compile
    /// keeps running detached and may still populate the cache.
    Timeout(u64),
    /// The server refused a budgeted request because the detached-worker
    /// cap (the payload) was already reached; retry once earlier abandoned
    /// compiles finish.
    Overloaded(usize),
    /// The event server's admission controller shed the request: its
    /// shape cluster exceeded the tier's cap within the sliding admission
    /// window (deterministic), or the global in-flight backstop tripped.
    /// Reported under the same `overloaded` kind as [`Self::Overloaded`]
    /// so clients need one retry path.
    Shed {
        /// Lower-case tier label (`"small"`, `"medium"`, `"large"`).
        tier: &'static str,
        /// The cap the request exceeded.
        cap: usize,
    },
    /// The input stream produced a line the reader could not decode
    /// (invalid UTF-8 or a transient read failure). The offending line is
    /// answered with this error and the stream keeps being read.
    Io(String),
    /// A `check:true` request produced a schedule the independent
    /// `epic-schedcheck` validator rejected. The payload names the
    /// function, machine, and first violation.
    Schedule(String),
    /// The request's `"config"` overrides named an unknown knob, mistyped
    /// one, or pushed one outside its legal range. The reply's error
    /// object carries a `"knob"` field naming the offender and the kind is
    /// `"bad_knob"` or `"out_of_range"` (from [`KnobError::kind`]).
    Knob(KnobError),
}

impl ServeError {
    /// A short machine-readable tag for the error class. Compile errors
    /// keep their inner kind (`"trap"`, `"diff"`, `"parse"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Compile(e) => e.kind(),
            ServeError::Protocol(_) => "protocol",
            ServeError::UnknownWorkload(_) => "unknown-workload",
            ServeError::Timeout(_) => "timeout",
            ServeError::Overloaded(_) => "overloaded",
            ServeError::Shed { .. } => "overloaded",
            ServeError::Io(_) => "io",
            ServeError::Schedule(_) => "schedule",
            ServeError::Knob(e) => e.kind(),
        }
    }

    /// Renders the error as a stable JSON object. Compile errors reuse
    /// [`CompileError::to_json`] verbatim (including their `stage` key).
    pub fn to_json(&self) -> String {
        match self {
            ServeError::Compile(e) => e.to_json(),
            ServeError::Knob(e) => {
                // Structured: clients can pick out the offending knob
                // without parsing the message.
                let knob = e.knob().unwrap_or("config");
                format!(
                    "{{\"kind\":{},\"knob\":{},\"message\":{}}}",
                    json_string(self.kind()),
                    json_string(knob),
                    json_string(&self.to_string())
                )
            }
            other => format!(
                "{{\"kind\":{},\"message\":{}}}",
                json_string(other.kind()),
                json_string(&other.to_string())
            ),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Compile(e) => write!(f, "{e}"),
            ServeError::Protocol(m) => write!(f, "bad request: {m}"),
            ServeError::UnknownWorkload(n) => write!(f, "unknown workload: {n}"),
            ServeError::Timeout(ms) => write!(f, "request exceeded {ms}ms"),
            ServeError::Overloaded(cap) => {
                write!(f, "detached-worker cap ({cap}) reached; retry later")
            }
            ServeError::Shed { tier, cap } => {
                write!(f, "shed: {tier}-tier admission cap ({cap}) exceeded; retry later")
            }
            ServeError::Io(m) => write!(f, "unreadable request line: {m}"),
            ServeError::Schedule(m) => write!(f, "schedule validation failed: {m}"),
            ServeError::Knob(e) => write!(f, "bad config: {e}"),
        }
    }
}

impl Error for ServeError {}

impl From<CompileError> for ServeError {
    fn from(e: CompileError) -> Self {
        ServeError::Compile(e)
    }
}

impl From<JsonError> for ServeError {
    fn from(e: JsonError) -> Self {
        ServeError::Protocol(e.to_string())
    }
}

impl From<KnobError> for ServeError {
    fn from(e: KnobError) -> Self {
        match e {
            // A config that is not even knob-shaped is a protocol error
            // (same wording the pre-registry parser used).
            KnobError::Malformed { message } => ServeError::Protocol(message),
            other => ServeError::Knob(other),
        }
    }
}

impl From<epic_ir::ParseError> for ServeError {
    fn from(e: epic_ir::ParseError) -> Self {
        ServeError::Compile(CompileError::Parse(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_interp::Trap;

    #[test]
    fn kinds_and_json() {
        let e = ServeError::UnknownWorkload("nope".into());
        assert_eq!(e.kind(), "unknown-workload");
        assert!(e.to_json().contains("\"kind\":\"unknown-workload\""));
        assert!(e.to_json().contains("nope"));

        let e = ServeError::Timeout(250);
        assert_eq!(e.kind(), "timeout");
        assert!(e.to_json().contains("250ms"));

        // Compile errors surface their inner structure unchanged.
        let e = ServeError::from(CompileError::from(Trap::OutOfFuel));
        assert_eq!(e.kind(), "trap");
        assert!(e.to_json().contains("\"stage\":\"interp\""));

        let e = ServeError::from(epic_ir::ParseError { line: 3, message: "bad".into() });
        assert_eq!(e.kind(), "parse");

        let e = ServeError::Overloaded(8);
        assert_eq!(e.kind(), "overloaded");
        assert!(e.to_json().contains("cap (8)"), "{}", e.to_json());

        let e = ServeError::Shed { tier: "large", cap: 4 };
        assert_eq!(e.kind(), "overloaded", "sheds share the retry path");
        assert!(e.to_json().contains("large-tier admission cap (4)"), "{}", e.to_json());

        let e = ServeError::Io("stream did not contain valid UTF-8".into());
        assert_eq!(e.kind(), "io");
        assert!(e.to_json().contains("valid UTF-8"), "{}", e.to_json());

        let e = ServeError::Schedule("x optimized on wide: bad".into());
        assert_eq!(e.kind(), "schedule");
        assert!(e.to_json().contains("\"kind\":\"schedule\""), "{}", e.to_json());
        assert!(e.to_json().contains("validation failed"), "{}", e.to_json());

        // Knob rejections surface the registry's classification and name
        // the offending knob in a dedicated field.
        let e = ServeError::from(KnobError::Unknown { name: "trace.max_blocks".into() });
        assert_eq!(e.kind(), "bad_knob");
        assert!(e.to_json().contains("\"knob\":\"trace.max_blocks\""), "{}", e.to_json());
        let e = ServeError::from(KnobError::OutOfRange {
            name: "trace.min_prob".into(),
            got: "1.5".into(),
            range: "[0.0, 1.0]".into(),
        });
        assert_eq!(e.kind(), "out_of_range");
        assert!(e.to_json().contains("\"knob\":\"trace.min_prob\""), "{}", e.to_json());
        // Shapeless configs degrade to plain protocol errors, as before
        // the registry.
        let e = ServeError::from(KnobError::Malformed {
            message: "\"config\" must be an object".into(),
        });
        assert_eq!(e.kind(), "protocol");
    }
}
