//! Request execution shared by both server front-ends.
//!
//! The thread-per-batch [`server`](crate::server) loop and the
//! event-driven [`event`](crate::event) server run the same pipeline per
//! request: parse, compile through the shared
//! [`CompileCache`](epic_bench::CompileCache), optionally diff-test and
//! schedule-check, and render exactly one reply line. This module owns
//! that per-request path — including the detached-thread timeout budget
//! and its gauge accounting — so the two front-ends cannot drift apart in
//! reply wording or accounting semantics.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use epic_bench::{check_equivalence, check_pair_schedules, compile_cached, CompileCache, Pipeline};
use epic_interp::diff_test;
use epic_obs::{MetricsRegistry, Span, TraceIdGuard};

use crate::proto::{render_err, render_ok, result_json, ControlOp, Request, Target};
use crate::ServeError;

/// Registry name of the gauge counting currently-abandoned compile threads.
pub const DETACHED_WORKERS_GAUGE: &str = "serve_detached_workers";
/// Registry name of the per-request latency histogram (microseconds).
pub const REQUEST_LATENCY_HISTOGRAM: &str = "serve_request_us";

/// What one serve loop did, reported once at shutdown (and live, to
/// `{"op":"metrics"}` control requests and the stderr heartbeat). Control
/// requests themselves are not counted: the tallies cover compile
/// requests only, so a metrics reply reconciles exactly with the final
/// report.
#[derive(Clone, Debug, Default)]
pub struct ServerMetrics {
    /// Request lines answered.
    pub requests: u64,
    /// ... of which succeeded.
    pub ok: u64,
    /// ... of which failed (including timeouts and sheds).
    pub errors: u64,
    /// ... of which timed out specifically.
    pub timeouts: u64,
    /// Stage lookups served from the cache, summed over all requests.
    pub cache_hits: u64,
    /// Stage lookups that computed, summed over all requests.
    pub cache_misses: u64,
    /// Total request latency (sum over requests), milliseconds.
    pub total_ms: f64,
    /// Worst single-request latency, milliseconds.
    pub max_ms: f64,
}

impl ServerMetrics {
    /// Stable JSON rendering for the shutdown report.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"ok\":{},\"errors\":{},\"timeouts\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\
             \"total_ms\":{:.3},\"max_ms\":{:.3}}}",
            self.requests,
            self.ok,
            self.errors,
            self.timeouts,
            self.cache_hits,
            self.cache_misses,
            self.total_ms,
            self.max_ms
        )
    }
}

/// The writer's tallies behind atomics, so heartbeat threads, in-band
/// `{"op":"metrics"}` renderers, and the event loop can snapshot them
/// while requests are still in flight. Latencies are stored as integer
/// microseconds; [`ServerMetrics`] gets them back as milliseconds.
#[derive(Default)]
pub(crate) struct LiveMetrics {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl LiveMetrics {
    pub(crate) fn tally(&self, out: &Outcome) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if out.ok {
            self.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        if out.timed_out {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
        }
        self.cache_hits.fetch_add(out.hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(out.misses, Ordering::Relaxed);
        let us = (out.ms * 1e3) as u64;
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServerMetrics {
        ServerMetrics {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            total_ms: self.total_us.load(Ordering::Relaxed) as f64 / 1e3,
            max_ms: self.max_us.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }
}

/// A finished compile, reduced to what the response needs.
struct Summary {
    result: String,
    hits: u64,
    misses: u64,
}

/// The machines a `check:true` request validates schedules under: the
/// wide and sequential extremes bracket the paper suite.
fn check_machines() -> [epic_machine::Machine; 2] {
    [epic_machine::Machine::wide(), epic_machine::Machine::sequential()]
}

/// Runs the pipeline for one request. Owns everything it touches so it can
/// be shipped to a detached thread when a timeout budget applies.
fn execute(req: &Request, cache: &CompileCache) -> Result<Summary, ServeError> {
    match &req.target {
        Target::Workload(name) => {
            let w = epic_workloads::by_name(name)
                .ok_or_else(|| ServeError::UnknownWorkload(name.clone()))?;
            let c = compile_cached(&w, &req.cfg, cache)?;
            if req.check {
                check_equivalence(&w, &c).map_err(epic_bench::CompileError::Diff)?;
                check_pair_schedules(w.name, &c, &check_machines())
                    .map_err(ServeError::Schedule)?;
            }
            Ok(Summary {
                result: result_json(w.name, &c, req.emit_ir),
                hits: c.cache_hits,
                misses: c.cache_misses,
            })
        }
        Target::Inline(t) => {
            let c = Pipeline::for_function(&t.name, &t.func, &t.input, t.unroll, &req.cfg)
                .with_cache(cache)
                .if_convert()?
                .meld()?
                .superblock()?
                .unroll()?
                .frp()?
                .icbm()?;
            if req.check {
                diff_test(&t.func, &c.baseline, &t.input)
                    .map_err(epic_bench::CompileError::Diff)?;
                diff_test(&t.func, &c.optimized, &t.input)
                    .map_err(epic_bench::CompileError::Diff)?;
                check_pair_schedules(&t.name, &c, &check_machines())
                    .map_err(ServeError::Schedule)?;
            }
            Ok(Summary {
                result: result_json(&t.name, &c, req.emit_ir),
                hits: c.cache_hits,
                misses: c.cache_misses,
            })
        }
    }
}

/// Lifecycle of one budgeted compile thread, tracked so the
/// [`DETACHED_WORKERS_GAUGE`] balances exactly: whichever side observes
/// both transitions (the timeout seeing `RUNNING`, or the compile thread
/// seeing `ABANDONED`) adjusts the gauge, so a finish racing the timeout
/// can neither leak an increment nor decrement twice.
const STATE_RUNNING: u8 = 0;
const STATE_DONE: u8 = 1;
const STATE_ABANDONED: u8 = 2;

/// `execute` under a wall-clock budget: the compile runs on a detached
/// thread and an expired budget abandons it (it keeps warming the cache).
/// Abandoned threads are counted on the [`DETACHED_WORKERS_GAUGE`]; at
/// `max_detached` of them the request is refused outright with
/// [`ServeError::Overloaded`] rather than spawning another.
fn execute_with_budget(
    req: Request,
    cache: &Arc<CompileCache>,
    budget_ms: Option<u64>,
    max_detached: usize,
) -> Result<Summary, ServeError> {
    let Some(ms) = budget_ms else {
        return execute(&req, cache);
    };
    let detached = MetricsRegistry::global().gauge(DETACHED_WORKERS_GAUGE);
    if detached.value() >= max_detached as i64 {
        return Err(ServeError::Overloaded(max_detached));
    }
    let (tx, rx) = mpsc::channel();
    let cache = Arc::clone(cache);
    let state = Arc::new(AtomicU8::new(STATE_RUNNING));
    let trace_id = epic_obs::current_trace_id();
    let thread_state = Arc::clone(&state);
    let thread_detached = Arc::clone(&detached);
    std::thread::spawn(move || {
        // Propagate the request's trace id so spans recorded by the
        // (possibly abandoned) compile still group under the request.
        let _g = trace_id.map(TraceIdGuard::set);
        // The receiver is gone iff the budget already expired; the result
        // is then simply dropped along with this thread.
        let _ = tx.send(execute(&req, &cache));
        if thread_state.swap(STATE_DONE, Ordering::AcqRel) == STATE_ABANDONED {
            thread_detached.add(-1);
        }
    });
    match rx.recv_timeout(Duration::from_millis(ms)) {
        Ok(res) => res,
        Err(_) => {
            if state.swap(STATE_ABANDONED, Ordering::AcqRel) == STATE_RUNNING {
                detached.add(1);
            }
            Err(ServeError::Timeout(ms))
        }
    }
}

/// One response line plus the accounting the writer tallies. A control
/// request's outcome carries no line: the writer renders it in-place when
/// its turn in the response order comes up, so the reported tallies cover
/// exactly the requests answered before it.
pub(crate) struct Outcome {
    pub(crate) line: String,
    pub(crate) ok: bool,
    pub(crate) timed_out: bool,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
    pub(crate) ms: f64,
    pub(crate) control: Option<ControlOp>,
}

impl Outcome {
    /// A control request, deferred to the writer (not tallied).
    pub(crate) fn control(op: ControlOp) -> Outcome {
        Outcome {
            line: String::new(),
            ok: true,
            timed_out: false,
            hits: 0,
            misses: 0,
            ms: 0.0,
            control: Some(op),
        }
    }

    /// An error outcome produced outside `process` (reader failures,
    /// malformed control requests, admission sheds) — no compile ran, so
    /// no latency.
    pub(crate) fn error_line(id: Option<u64>, e: &ServeError) -> Outcome {
        Outcome {
            line: render_err(id, e, 0, 0, 0.0, epic_obs::next_trace_id()),
            ok: false,
            timed_out: matches!(e, ServeError::Timeout(_)),
            hits: 0,
            misses: 0,
            ms: 0.0,
            control: None,
        }
    }
}

/// Parses and executes one compile-request line end to end, producing the
/// reply line plus its accounting. Every failure mode degrades to an
/// `{"ok":false,...}` line; nothing escapes.
pub(crate) fn process(
    line: &str,
    cache: &Arc<CompileCache>,
    default_timeout_ms: Option<u64>,
    max_detached: usize,
) -> Outcome {
    // One trace id per request: every span recorded while serving it —
    // pipeline stages, cache probes, ICBM sub-phases, even on an abandoned
    // budget thread — carries this id, and the reply echoes it.
    let trace_id = epic_obs::next_trace_id();
    let _id_guard = TraceIdGuard::set(trace_id);
    let _span = Span::enter("serve.request", "serve");
    let t0 = Instant::now();
    let (id, res) = match Request::parse(line) {
        // Parse-stage failures (malformed fields, bad knobs) still echo a
        // plainly-present id, matching the event server's shed/error path.
        Err(e) => (crate::proto::peek_id(line), Err(e)),
        Ok(req) => {
            let id = req.id;
            let budget = req.timeout_ms.or(default_timeout_ms);
            (id, execute_with_budget(req, cache, budget, max_detached))
        }
    };
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    match res {
        Ok(s) => Outcome {
            line: render_ok(id, &s.result, s.hits, s.misses, ms, trace_id),
            ok: true,
            timed_out: false,
            hits: s.hits,
            misses: s.misses,
            ms,
            control: None,
        },
        Err(e) => Outcome {
            line: render_err(id, &e, 0, 0, ms, trace_id),
            ok: false,
            timed_out: matches!(e, ServeError::Timeout(_)),
            hits: 0,
            misses: 0,
            ms,
            control: None,
        },
    }
}
