//! Request shape clustering and deterministic admission control.
//!
//! The event server classifies every compile request into a **shape
//! cluster** before any expensive work happens: a cost tier derived from
//! the target function's op count and branch height, plus a hash of the
//! request's config overrides (configs change unroll factors and pass
//! selection, which change compile cost). Suite workloads are
//! pre-measured once at startup ([`ShapeTable`]); inline-IR requests are
//! estimated from the raw IR text without parsing it — classification
//! must stay O(line length), not O(compile).
//!
//! Admission is **deterministic**: a per-connection sliding window of the
//! last `window` compile requests, with a per-tier cap inside the window.
//! Whether request *n* of a stream is shed depends only on the requests
//! before it and the configured caps — never on wall-clock timing or
//! worker speed — so replaying a stream reproduces the exact same set of
//! `overloaded` replies (tested, and load-shed decisions stay debuggable
//! from logs alone). The server layers a *non*-deterministic global
//! in-flight backstop on top for genuine overload; see
//! [`EventOptions`](crate::event::EventOptions).
//!
//! The clustering mirrors sp1's `CoreShapeConfig` idea: group work by
//! precomputed shape, then make load decisions per cluster instead of per
//! opaque request.

use std::collections::HashMap;

/// Cost tier of one request's shape cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Near-trivial functions (straight-line or tiny CFGs).
    Small,
    /// Mid-size CFGs.
    Medium,
    /// The branch-heavy upper quartile — where ICBM and scheduling time
    /// concentrates.
    Large,
}

impl Tier {
    /// All tiers, `Small` first (index order matches [`Tier::index`]).
    pub const ALL: [Tier; 3] = [Tier::Small, Tier::Medium, Tier::Large];

    /// Stable position of the tier in cap arrays and metric names.
    pub fn index(self) -> usize {
        match self {
            Tier::Small => 0,
            Tier::Medium => 1,
            Tier::Large => 2,
        }
    }

    /// Lower-case label used in metric names and shed error messages.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Small => "small",
            Tier::Medium => "medium",
            Tier::Large => "large",
        }
    }
}

/// The precomputed shape of one compile target.
#[derive(Clone, Copy, Debug)]
pub struct Shape {
    /// Static operation count of the source function.
    pub ops: usize,
    /// Branch height proxy: blocks on the layout minus the entry.
    pub branches: usize,
}

impl Shape {
    /// Scalar cost score: ops plus a branch weight. Branches dominate
    /// downstream cost (region formation, ICBM restructuring, scheduling
    /// all scale with control height), so they count 4x.
    pub fn score(&self) -> usize {
        self.ops + 4 * self.branches
    }

    /// The tier this shape clusters into. Thresholds bracket the suite:
    /// the upper bucket holds the workloads where compile time actually
    /// concentrates (espresso, cccp, m88ksim, yacc, ...).
    pub fn tier(&self) -> Tier {
        match self.score() {
            0..=44 => Tier::Small,
            45..=59 => Tier::Medium,
            _ => Tier::Large,
        }
    }
}

/// 64-bit FNV-1a over a byte string (same mix the cache router uses).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One request classified before execution.
#[derive(Clone, Copy, Debug)]
pub struct Classified {
    /// Cost tier of the shape cluster.
    pub tier: Tier,
    /// Stable routing fingerprint: requests for the same target always
    /// land on the same compile worker, keeping a hot workload's cache
    /// shard core-local (fed to
    /// [`route_fingerprint`](epic_bench::route_fingerprint)).
    pub route_fp: u64,
    /// Hash of the request's config overrides (part of the cluster key:
    /// the same function under an 8x unroll config is a different shape).
    pub config_fp: u64,
}

/// Precomputed shapes for every suite workload, plus the estimator for
/// inline-IR requests. Built once at server startup.
pub struct ShapeTable {
    by_name: HashMap<&'static str, (Shape, u64)>,
}

impl Default for ShapeTable {
    fn default() -> Self {
        ShapeTable::new()
    }
}

impl ShapeTable {
    /// Measures every suite workload: exact op/branch counts and the
    /// structural function fingerprint used for worker routing.
    pub fn new() -> ShapeTable {
        let by_name = epic_workloads::all()
            .iter()
            .map(|w| {
                let shape = Shape {
                    ops: w.func.static_op_count(),
                    branches: w.func.layout.len().saturating_sub(1),
                };
                (w.name, (shape, w.func.fingerprint()))
            })
            .collect();
        ShapeTable { by_name }
    }

    /// The precomputed shape of a suite workload, if it exists.
    pub fn workload(&self, name: &str) -> Option<Shape> {
        self.by_name.get(name).map(|(s, _)| *s)
    }

    /// Classifies one raw request line without parsing it as JSON. Uses
    /// cheap substring scans: the workload name (exact shape from the
    /// table), or for inline IR a line/branch count estimate over the
    /// embedded text. Unknown workloads classify `Small` with a
    /// line-hash route — they fail fast on whichever worker gets them.
    pub fn classify_line(&self, line: &str) -> Classified {
        let config_fp = extract_after(line, "\"config\"").map_or(0, |s| fnv64(s.as_bytes()));
        if let Some(name) = extract_string_value(line, "\"workload\"") {
            if let Some((shape, fp)) = self.by_name.get(name) {
                return Classified { tier: shape.tier(), route_fp: *fp, config_fp };
            }
            return Classified {
                tier: Tier::Small,
                route_fp: fnv64(name.as_bytes()),
                config_fp,
            };
        }
        if let Some(ir) = extract_after(line, "\"ir\"") {
            // The IR is a JSON string with embedded `\n` escapes: one op
            // or label per line, branches printed as `branch(...)`.
            // Counting escapes and mnemonics bounds the work by the line
            // length.
            let ops = ir.matches("\\n").count();
            let branches = ir.matches("branch(").count();
            let shape = Shape { ops, branches };
            return Classified {
                tier: shape.tier(),
                route_fp: fnv64(line.as_bytes()),
                config_fp,
            };
        }
        // Neither a workload nor inline IR: a protocol error in the
        // making. Route by the whole line; it answers cheaply.
        Classified { tier: Tier::Small, route_fp: fnv64(line.as_bytes()), config_fp }
    }
}

/// The string value following `key` in `line` (`"key":"value"`), without
/// JSON-parsing the line. Returns `None` when absent or not a string.
fn extract_string_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = extract_after(line, key)?;
    let rest = rest.strip_prefix('"')?;
    rest.split('"').next()
}

/// Everything after `"key":` in `line` (whitespace-tolerant), up to the
/// end of the line. Good enough for hashing and prefix scans; never used
/// to extract exact JSON values that matter for correctness.
fn extract_after<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let i = line.find(key)?;
    let rest = &line[i + key.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix(':')?;
    Some(rest.trim_start())
}

/// Deterministic per-connection admission: a sliding window over the last
/// `window` compile requests with a per-tier cap. See the module docs for
/// the determinism argument.
#[derive(Clone, Debug)]
pub struct Admission {
    window: usize,
    caps: [usize; 3],
    /// Tier of each of the last `window` admitted-or-shed requests, as a
    /// ring buffer.
    ring: Vec<Tier>,
    /// Next ring slot to overwrite.
    cursor: usize,
    /// Requests currently in the ring, per tier.
    counts: [usize; 3],
}

impl Admission {
    /// An admission window of `window` requests with per-tier caps
    /// (`[small, medium, large]`). A cap at or above `window` never sheds
    /// that tier.
    pub fn new(window: usize, caps: [usize; 3]) -> Admission {
        let window = window.max(1);
        Admission { window, caps, ring: Vec::with_capacity(window), cursor: 0, counts: [0; 3] }
    }

    /// Decides request admission: `true` to run, `false` to shed with an
    /// `overloaded` error. Every compile request — admitted or shed —
    /// occupies a window slot, so a storm of one tier cannot starve the
    /// window of memory about itself and the decision stays a pure
    /// function of the request stream.
    pub fn admit(&mut self, tier: Tier) -> bool {
        if self.ring.len() < self.window {
            self.ring.push(tier);
        } else {
            let old = self.ring[self.cursor];
            self.counts[old.index()] -= 1;
            self.ring[self.cursor] = tier;
        }
        self.cursor = (self.cursor + 1) % self.window;
        self.counts[tier.index()] += 1;
        self.counts[tier.index()] <= self.caps[tier.index()]
    }

    /// The configured cap of `tier` (for shed error payloads).
    pub fn cap(&self, tier: Tier) -> usize {
        self.caps[tier.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_workloads_cover_all_tiers() {
        let table = ShapeTable::new();
        let mut seen = [false; 3];
        for w in epic_workloads::all() {
            let shape = table.workload(w.name).unwrap();
            seen[shape.tier().index()] = true;
        }
        assert_eq!(seen, [true; 3], "tier thresholds must split the suite");
        // Anchors: the trivial and the heavy end of the suite.
        assert_eq!(table.workload("strcpy").unwrap().tier(), Tier::Small);
        assert_eq!(table.workload("cccp").unwrap().tier(), Tier::Large);
    }

    #[test]
    fn classify_line_matches_table_and_is_stable() {
        let table = ShapeTable::new();
        let a = table.classify_line(r#"{"id":1,"workload":"cccp"}"#);
        assert_eq!(a.tier, Tier::Large);
        let b = table.classify_line(r#"{"id":999,"workload":"cccp","check":true}"#);
        assert_eq!(a.route_fp, b.route_fp, "same target must route identically");
        let c = table.classify_line(r#"{"id":1,"workload":"strcpy"}"#);
        assert_eq!(c.tier, Tier::Small);
        assert_ne!(a.route_fp, c.route_fp);
    }

    #[test]
    fn config_overrides_change_the_cluster_not_the_route() {
        let table = ShapeTable::new();
        let plain = table.classify_line(r#"{"id":1,"workload":"grep"}"#);
        let tuned = table.classify_line(r#"{"id":1,"workload":"grep","config":{"unroll":8}}"#);
        assert_eq!(plain.route_fp, tuned.route_fp, "routing keys on the target");
        assert_ne!(plain.config_fp, tuned.config_fp, "configs split the cluster");
    }

    #[test]
    fn inline_ir_estimates_without_parsing() {
        let table = ShapeTable::new();
        let small = table.classify_line(r#"{"id":1,"name":"f","ir":"f:\nblock b0:\n  ret\n"}"#);
        assert_eq!(small.tier, Tier::Small);
        let body: String = (0..40).map(|i| format!("  r{i} = add r0, r1\\n")).collect();
        let branches: String = (0..8).map(|i| format!("  branch(r0 -> b{i})\\n")).collect();
        let big = table.classify_line(&format!("{{\"id\":2,\"name\":\"g\",\"ir\":\"{body}{branches}\"}}"));
        assert_eq!(big.tier, Tier::Large);
    }

    #[test]
    fn admission_is_a_pure_function_of_the_stream() {
        let stream: Vec<Tier> = (0..200)
            .map(|i| match i % 5 {
                0 | 1 => Tier::Small,
                2 | 3 => Tier::Medium,
                _ => Tier::Large,
            })
            .collect();
        let run = || {
            let mut adm = Admission::new(10, [10, 4, 1]);
            stream.iter().map(|&t| adm.admit(t)).collect::<Vec<bool>>()
        };
        let a = run();
        assert_eq!(a, run(), "same stream + same caps => same decisions");
        assert!(a.contains(&false), "the large tier must shed under this cap");
        assert!(a.contains(&true));
    }

    #[test]
    fn window_forgets_old_requests() {
        let mut adm = Admission::new(4, [4, 4, 1]);
        assert!(adm.admit(Tier::Large), "first large fits");
        assert!(!adm.admit(Tier::Large), "second large in window sheds");
        for _ in 0..4 {
            adm.admit(Tier::Small); // slide the large requests out
        }
        assert!(adm.admit(Tier::Large), "window slid; large admits again");
    }

    #[test]
    fn generous_caps_never_shed() {
        let mut adm = Admission::new(8, [8, 8, 8]);
        for i in 0..1000 {
            let tier = Tier::ALL[i % 3];
            assert!(adm.admit(tier), "cap == window must never shed");
        }
    }
}
