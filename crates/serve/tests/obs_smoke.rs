//! End-to-end smoke of the observability layer through the real `serve`
//! binary: in-band `{"op":"metrics"}` control requests, per-reply `ms` /
//! `trace_id` fields, the stderr heartbeat, and the reader's tolerance of
//! an undecodable (invalid UTF-8) request line — all in one batch.

use std::io::Write;
use std::process::{Command, Stdio};
use std::time::Duration;

use epic_bench::Json;

#[test]
fn metrics_heartbeat_and_io_errors_through_the_binary() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--threads", "1", "--heartbeat-ms", "25"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    {
        let stdin = child.stdin.as_mut().expect("stdin");
        let mut batch: Vec<u8> = Vec::new();
        batch.extend_from_slice(b"{\"op\":\"metrics\",\"id\":100}\n");
        batch.extend_from_slice(b"{\"id\":1,\"workload\":\"strcpy\"}\n");
        batch.extend_from_slice(b"{\"id\":2,\"workload\":\"cmp\"}\n");
        batch.extend_from_slice(b"{\"id\":3,\"workload\":\"nonesuch\"}\n");
        // An undecodable line: answered with an `io` error, then the
        // stream keeps being served (the pre-fix server dropped the
        // connection here, silently swallowing the final two lines).
        batch.extend_from_slice(b"\xff\xfe{\"id\":4,\"workload\":\"cmp\"}\n");
        batch.extend_from_slice(b"{\"id\":5,\"workload\":\"strcpy\"}\n");
        batch.extend_from_slice(b"{\"op\":\"metrics\",\"id\":101}\n");
        stdin.write_all(&batch).unwrap();
        stdin.flush().unwrap();
        // Hold the stream open so the heartbeat provably ticks while the
        // server is live (it reports every 25ms until shutdown).
        std::thread::sleep(Duration::from_millis(150));
    }
    drop(child.stdin.take()); // EOF => shutdown
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));

    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 7, "stdout:\n{stdout}");

    // The opening metrics op is answered in request order, before any
    // compile was tallied.
    let first = Json::parse(lines[0]).unwrap();
    assert_eq!(first.get("id").and_then(Json::as_u64), Some(100));
    let m = first.get("metrics").expect("metrics object");
    assert_eq!(m.get("requests").and_then(Json::as_u64), Some(0));

    // Compile replies carry latency and a nonzero request trace id; ids
    // are unique per request.
    let mut trace_ids = Vec::new();
    for l in &lines[1..6] {
        let j = Json::parse(l).unwrap_or_else(|e| panic!("bad reply {l}: {e}"));
        assert!(j.get("ms").and_then(Json::as_f64).is_some(), "{l}");
        let tid = j.get("trace_id").and_then(Json::as_str).expect("trace_id").to_string();
        assert!(u64::from_str_radix(&tid, 16).unwrap() > 0, "{l}");
        trace_ids.push(tid);
    }
    trace_ids.sort();
    trace_ids.dedup();
    assert_eq!(trace_ids.len(), 5, "trace ids must be unique per request");
    assert!(lines[3].contains("\"unknown-workload\""), "{}", lines[3]);
    assert!(lines[4].contains("\"kind\":\"io\""), "{}", lines[4]);
    assert!(lines[5].contains("\"ok\":true"), "{}", lines[5]);

    // The closing metrics op reconciles exactly with the shutdown report:
    // 5 compile lines (3 ok, 1 unknown-workload, 1 io), no control ops.
    let last = Json::parse(lines[6]).unwrap();
    assert_eq!(last.get("id").and_then(Json::as_u64), Some(101));
    let m = last.get("metrics").expect("metrics object");
    assert_eq!(m.get("requests").and_then(Json::as_u64), Some(5));
    assert_eq!(m.get("ok").and_then(Json::as_u64), Some(3));
    assert_eq!(m.get("errors").and_then(Json::as_u64), Some(2));
    assert!(last.get("registry").is_some(), "{}", lines[6]);

    let stderr = String::from_utf8_lossy(&out.stderr);
    // The heartbeat reported live tallies while the batch ran…
    assert!(stderr.contains("serve: heartbeat {\"metrics\":{"), "stderr: {stderr}");
    // …and the shutdown line agrees with the in-band metrics reply.
    let final_line = stderr
        .lines()
        .filter_map(|l| l.strip_prefix("serve: {"))
        .next_back()
        .map(|rest| format!("{{{rest}"))
        .expect("final metrics line");
    let f = Json::parse(&final_line).unwrap();
    assert_eq!(f.get("requests").and_then(Json::as_u64), Some(5));
    assert_eq!(f.get("ok").and_then(Json::as_u64), Some(3));
    assert_eq!(f.get("errors").and_then(Json::as_u64), Some(2));
}
