//! Edge-case tests for the event-driven server: ordering against the v1
//! reference, write backpressure against slow readers, half-closed
//! sockets, pathological clients, and deterministic load shedding.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use epic_bench::CompileCache;
use epic_obs::MetricsRegistry;
use epic_serve::event::READ_PAUSES_COUNTER;
use epic_serve::{serve, EventOptions, EventServer, ServerMetrics, ServerOptions, ShutdownHandle};

/// Spawns an event server on a loopback port and returns how to reach,
/// stop, and join it.
fn start(opts: EventOptions) -> (SocketAddr, ShutdownHandle, JoinHandle<ServerMetrics>) {
    let cache = Arc::new(CompileCache::new());
    let server = EventServer::bind("127.0.0.1:0", cache, opts).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().expect("event loop"));
    (addr, shutdown, handle)
}

/// Lenient options: nothing sheds, nothing times out.
fn open_opts() -> EventOptions {
    EventOptions { workers: 2, ..EventOptions::default() }
}

/// Truncates a reply at its `"cache"` key: everything before it is a pure
/// function of the request (the suffix carries wall-clock `ms` and the
/// run-specific `trace_id`).
fn stable_prefix(line: &str) -> &str {
    line.split(",\"cache\":").next().unwrap()
}

/// Runs `lines` through the v1 in-process server and returns its replies.
fn v1_replies(lines: &str) -> Vec<String> {
    let cache = Arc::new(CompileCache::new());
    let mut out: Vec<u8> = Vec::new();
    let opts = ServerOptions { threads: 2, ..ServerOptions::default() };
    serve(BufReader::new(lines.as_bytes()), &mut out, cache, &opts).expect("v1 serve");
    String::from_utf8(out).unwrap().lines().map(str::to_string).collect()
}

/// Sends `lines` over one connection, half-closes, and reads every reply.
fn roundtrip(addr: SocketAddr, lines: &str) -> Vec<String> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(lines.as_bytes()).expect("send");
    conn.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut replies = Vec::new();
    for line in BufReader::new(conn).lines() {
        replies.push(line.expect("reply line"));
    }
    replies
}

#[test]
fn replies_stream_in_order_and_match_v1() {
    let stream = concat!(
        "{\"id\":1,\"workload\":\"strcpy\"}\n",
        "\n", // blank: skipped, no reply slot
        "{\"id\":2,\"workload\":\"wc\",\"check\":true}\n",
        "{\"id\":3,\"workload\":\"no-such-workload\"}\n",
        "this is not json\n",
        "{\"id\":4,\"op\":\"metrics\"}\n",
        "{\"id\":5,\"workload\":\"strcpy\",\"config\":{\"trace\":{\"min_count\":8}}}\n",
        "{\"id\":6,\"op\":\"nonsense\"}\n",
    );
    let expect = v1_replies(stream);
    let (addr, shutdown, handle) = start(open_opts());
    let got = roundtrip(addr, stream);
    shutdown.shutdown();
    handle.join().unwrap();

    assert_eq!(got.len(), expect.len(), "one reply per non-blank line\n{got:#?}");
    for (g, e) in got.iter().zip(&expect) {
        if g.contains("\"metrics\"") {
            // Control replies carry live global-registry snapshots; check
            // the shape, not the counter values.
            assert!(e.contains("\"metrics\""), "reply kind diverged: {g} vs {e}");
            assert!(g.starts_with("{\"id\":4,\"ok\":true,\"metrics\":{\"requests\":"), "{g}");
            continue;
        }
        assert_eq!(stable_prefix(g), stable_prefix(e), "v2 must answer byte-like v1");
    }
}

#[test]
fn slow_reader_hits_backpressure_but_loses_nothing() {
    // Tiny output budget + emit_ir (multi-KB replies) forces the
    // high-water mark quickly; the sndbuf cap keeps the kernel from
    // absorbing the backlog before the server's own buffer sees it.
    let opts = EventOptions {
        workers: 2,
        conn_buffer: 2048,
        sndbuf: Some(4096),
        ..EventOptions::default()
    };
    let (addr, shutdown, handle) = start(opts);
    let pauses_before = MetricsRegistry::global().counter(READ_PAUSES_COUNTER).value();

    // Enough emit_ir volume that replies overrun both the kernel socket
    // buffer and the 2 KiB server-side high-water mark while the client
    // dawdles. cccp is the suite's largest function, so its compiled IR
    // makes replies multi-KB each.
    let n = 60;
    let mut conn = TcpStream::connect(addr).expect("connect");
    for i in 0..n {
        let line = format!("{{\"id\":{i},\"workload\":\"cccp\",\"emit_ir\":true}}\n");
        conn.write_all(line.as_bytes()).expect("send");
    }
    conn.shutdown(std::net::Shutdown::Write).expect("half-close");

    // Read far slower than the server can answer (~200 KB/s against
    // ~750 KB of replies), so the backlog must land in the server's
    // output buffer once the kernel socket buffers fill.
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(k) => {
                raw.extend_from_slice(&chunk[..k]);
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("read failed: {e}"),
        }
    }
    shutdown.shutdown();
    handle.join().unwrap();

    let replies: Vec<&str> = std::str::from_utf8(&raw).unwrap().lines().collect();
    assert_eq!(replies.len(), n, "every reply must survive backpressure");
    for (i, r) in replies.iter().enumerate() {
        assert!(
            r.starts_with(&format!("{{\"id\":{i},\"ok\":true")),
            "reply {i} out of order or failed: {r}"
        );
    }
    let pauses_after = MetricsRegistry::global().counter(READ_PAUSES_COUNTER).value();
    assert!(
        pauses_after > pauses_before,
        "a stalled reader must trip the pause counter ({pauses_before} -> {pauses_after})"
    );
}

#[test]
fn half_closed_socket_still_gets_every_reply() {
    let (addr, shutdown, handle) = start(open_opts());
    let mut conn = TcpStream::connect(addr).expect("connect");
    for i in 0..10 {
        conn.write_all(format!("{{\"id\":{i},\"workload\":\"wc\"}}\n").as_bytes()).unwrap();
    }
    // Client is done sending *before* any reply lands; the server must
    // treat EOF as half-close, not hangup.
    conn.shutdown(std::net::Shutdown::Write).unwrap();
    let replies: Vec<String> =
        BufReader::new(conn).lines().map(|l| l.expect("reply")).collect();
    shutdown.shutdown();
    handle.join().unwrap();
    assert_eq!(replies.len(), 10);
    for (i, r) in replies.iter().enumerate() {
        assert!(r.starts_with(&format!("{{\"id\":{i},\"ok\":true")), "{r}");
    }
}

#[test]
fn one_byte_per_syscall_client_is_just_slow() {
    let (addr, shutdown, handle) = start(open_opts());
    let mut conn = TcpStream::connect(addr).expect("connect");
    let lines = "{\"id\":1,\"workload\":\"strcpy\"}\n{\"id\":2,\"workload\":\"wc\"}\n";
    for b in lines.as_bytes() {
        conn.write_all(std::slice::from_ref(b)).expect("dribble");
    }
    conn.shutdown(std::net::Shutdown::Write).unwrap();
    let replies: Vec<String> =
        BufReader::new(conn).lines().map(|l| l.expect("reply")).collect();
    shutdown.shutdown();
    handle.join().unwrap();
    assert_eq!(replies.len(), 2);
    assert!(replies[0].starts_with("{\"id\":1,\"ok\":true"), "{}", replies[0]);
    assert!(replies[1].starts_with("{\"id\":2,\"ok\":true"), "{}", replies[1]);
}

#[test]
fn invalid_utf8_answers_io_error_and_stream_survives() {
    let (addr, shutdown, handle) = start(open_opts());
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(b"{\"id\":1,\"workload\":\"strcpy\"}\n").unwrap();
    conn.write_all(&[0xff, 0xfe, b'x', b'\n']).unwrap();
    conn.write_all(b"{\"id\":3,\"workload\":\"wc\"}\n").unwrap();
    conn.shutdown(std::net::Shutdown::Write).unwrap();
    let replies: Vec<String> =
        BufReader::new(conn).lines().map(|l| l.expect("reply")).collect();
    shutdown.shutdown();
    handle.join().unwrap();
    assert_eq!(replies.len(), 3);
    assert!(replies[0].starts_with("{\"id\":1,\"ok\":true"), "{}", replies[0]);
    assert!(replies[1].contains("\"kind\":\"io\""), "{}", replies[1]);
    assert!(replies[1].contains("valid UTF-8"), "same wording as v1: {}", replies[1]);
    assert!(replies[2].starts_with("{\"id\":3,\"ok\":true"), "{}", replies[2]);
}

/// Ids answered with an `overloaded` error, in reply order.
fn shed_ids(replies: &[String]) -> Vec<u64> {
    replies
        .iter()
        .filter(|r| r.contains("\"kind\":\"overloaded\""))
        .map(|r| {
            let after = r.split("\"id\":").nth(1).expect("id in reply");
            after.split([',', '}']).next().unwrap().parse().expect("numeric id")
        })
        .collect()
}

#[test]
fn shedding_is_deterministic_per_stream() {
    // A window of 8 admitting at most 2 large requests: a large-heavy
    // stream must shed, and must shed the *same* requests every time.
    let opts = EventOptions {
        workers: 2,
        shed_window: 8,
        shed_caps: [8, 8, 2],
        ..EventOptions::default()
    };
    let (addr, shutdown, handle) = start(opts);
    let mut stream = String::new();
    for i in 0..24 {
        let w = if i % 3 == 0 { "strcpy" } else { "cccp" }; // cccp is Large
        stream.push_str(&format!("{{\"id\":{i},\"workload\":\"{w}\"}}\n"));
    }
    let first = roundtrip(addr, &stream);
    let second = roundtrip(addr, &stream);
    shutdown.shutdown();
    handle.join().unwrap();

    assert_eq!(first.len(), 24, "shed requests still get replies");
    let (a, b) = (shed_ids(&first), shed_ids(&second));
    assert!(!a.is_empty(), "this stream must shed under a 2-large cap");
    assert_eq!(a, b, "same stream + same caps must shed the same ids");
    // And admitted large requests still succeeded.
    assert!(first.iter().any(|r| r.contains("\"ok\":true")), "{first:#?}");
}

#[test]
fn poll_fallback_serves_the_same_protocol() {
    let opts = EventOptions { workers: 2, force_poll: true, ..EventOptions::default() };
    let cache = Arc::new(CompileCache::new());
    let server = EventServer::bind("127.0.0.1:0", cache, opts).expect("bind");
    assert!(server.is_poll_fallback());
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run().expect("event loop"));
    let replies = roundtrip(addr, "{\"id\":1,\"workload\":\"strcpy\"}\n{\"id\":2,\"op\":\"metrics\"}\n");
    shutdown.shutdown();
    handle.join().unwrap();
    assert_eq!(replies.len(), 2);
    assert!(replies[0].starts_with("{\"id\":1,\"ok\":true"), "{}", replies[0]);
    assert!(replies[1].contains("\"metrics\""), "{}", replies[1]);
}
