//! End-to-end smoke test of the real `serve` binary over stdin/stdout.
//!
//! Feeds the same mixed batch twice through one process: the second pass
//! must be answered entirely from the warm compile cache (`"misses":0` on
//! every line) with responses byte-identical to the first pass once the
//! cache counters are stripped.

use std::io::Write;
use std::process::{Command, Stdio};

use epic_bench::Json;

/// Drops the trailing `,"cache":{...}}` so replies can be compared across
/// cache-hit and cache-miss servings.
fn strip_cache(line: &str) -> &str {
    line.rfind(",\"cache\":").map_or(line, |i| &line[..i])
}

fn cache_counts(line: &str) -> (u64, u64) {
    let j = Json::parse(line).unwrap_or_else(|e| panic!("bad response {line}: {e}"));
    let c = j.get("cache").expect("cache object");
    (
        c.get("hits").and_then(Json::as_u64).expect("hits"),
        c.get("misses").and_then(Json::as_u64).expect("misses"),
    )
}

#[test]
fn batch_twice_through_one_server_hits_cache_everywhere() {
    // A mixed batch: several workloads, a config variation sharing
    // upstream stages with the default, an error line, and a timeout —
    // repeated verbatim as a second pass.
    let batch = concat!(
        r#"{"id":1,"workload":"strcpy","check":true}"#, "\n",
        r#"{"id":2,"workload":"cmp"}"#, "\n",
        r#"{"id":3,"workload":"wc","config":{"cpr":{"enable_taken_variation":false}}}"#, "\n",
        r#"{"id":4,"workload":"wc"}"#, "\n",
        r#"{"id":5,"workload":"nonesuch"}"#, "\n",
        r#"{"id":6,"workload":"grep","timeout_ms":0}"#, "\n",
        "\n", // blank lines are skipped, not answered
        r#"{"id":7,"workload":"strcpy"}"#, "\n",
    );
    let expected_per_pass = 7;

    // One worker keeps the cold pass's intra-batch hit counts exact
    // (concurrent misses on one key are legal and covered by the lib
    // tests); the reorder buffer and the pool itself are exercised there.
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--threads")
        .arg("1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    {
        let stdin = child.stdin.as_mut().expect("stdin");
        stdin.write_all(batch.as_bytes()).unwrap();
        stdin.write_all(batch.as_bytes()).unwrap();
    }
    drop(child.stdin.take()); // EOF => shutdown
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "serve failed: {}", String::from_utf8_lossy(&out.stderr));

    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2 * expected_per_pass, "stdout:\n{stdout}");
    let (first, second) = lines.split_at(expected_per_pass);

    // Responses come back in request order with ids echoed.
    for pass in [first, second] {
        let ids: Vec<u64> = pass
            .iter()
            .map(|l| Json::parse(l).unwrap().get("id").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 7]);
        // The error and timeout lines fail structurally; the rest succeed.
        for (i, l) in pass.iter().enumerate() {
            let want_ok = !matches!(i, 4 | 5);
            assert_eq!(l.contains("\"ok\":true"), want_ok, "{l}");
        }
        assert!(pass[4].contains("\"unknown-workload\""), "{}", pass[4]);
        assert!(pass[5].contains("\"timeout\""), "{}", pass[5]);
    }

    // Second pass: 100% cache hits — zero redundant stage recompiles —
    // and byte-identical responses modulo the cache counters.
    for (a, b) in first.iter().zip(second) {
        assert_eq!(strip_cache(a), strip_cache(b), "pass divergence");
    }
    for l in second {
        if l.contains("\"ok\":true") {
            let (hits, misses) = cache_counts(l);
            assert_eq!(misses, 0, "second pass recompiled: {l}");
            assert!(hits > 0, "{l}");
        }
    }
    // id 7 repeats id 1's workload within the first pass, and id 4 shares
    // all of id 3's pre-ICBM stages, so even the cold pass sees hits.
    let (hits7, misses7) = cache_counts(first[6]);
    assert_eq!((hits7, misses7), (3, 0), "{}", first[6]);
    let (hits4, misses4) = cache_counts(first[3]);
    assert_eq!(
        (hits4, misses4),
        (2, 1),
        "wc under the default config reuses superblock+unroll, recompiles icbm: {}",
        first[3]
    );

    // Shutdown metrics land on stderr as JSON.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("\"requests\":14"), "stderr: {stderr}");
}

#[test]
fn inline_ir_round_trips_through_the_binary() {
    let w = epic_workloads::by_name("strcpy").unwrap();
    let ir = epic_bench::timing::json_string(&w.func.to_string());
    let request = format!(
        "{{\"id\":9,\"name\":\"mine\",\"ir\":{ir},\"unroll\":2,\"check\":true,\"emit_ir\":true,\
         \"input\":{{\"memory_size\":16384,\"memory\":[[0,[104,105,0]]],\"fuel\":100000}}}}\n"
    );

    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child.stdin.as_mut().unwrap().write_all(request.as_bytes()).unwrap();
    drop(child.stdin.take());
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success());

    let stdout = String::from_utf8(out.stdout).unwrap();
    let j = Json::parse(stdout.trim()).unwrap_or_else(|e| panic!("bad response {stdout}: {e}"));
    assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true), "{stdout}");
    let result = j.get("result").expect("result");
    assert_eq!(result.get("name").and_then(Json::as_str), Some("mine"));
    // emit_ir ships both compiled functions; the baseline must reparse.
    let base_ir = result
        .get("ir")
        .and_then(|i| i.get("baseline"))
        .and_then(Json::as_str)
        .expect("baseline ir");
    epic_ir::parse_function(base_ir).expect("compiled baseline reparses");
}
