//! Induction-variable flattening for unrolled loop bodies.
//!
//! Verbatim unrolling leaves pointer-advance chains
//! (`a₁ = a₀ + 1; a₂ = a₁ + 1; …`) that serialize every iteration's address
//! computation. Real unrollers rewrite these as offsets from the entry value
//! (`a₁ = a₀ + 1; a₂ = a₀ + 2; …`), which is precisely the shape of the
//! paper's Figure 6(b) (`r11 = add(r1, 1)`, `r12 = add(r1, 2)`,
//! `r13 = add(r1, 3)` all off the same base). Without this, the unrolled
//! critical path is the induction chain and branch height reduction has
//! nothing to win.
//!
//! The pass tracks, for every register, whether its current value is
//! `entry_value(base) + constant`, and rewrites `add`/`sub`-immediate and
//! `mov` operations to compute directly from the base register whenever the
//! base still holds its entry value at that point.

use std::collections::{HashMap, HashSet};

use epic_ir::{BlockId, Dest, Function, Opcode, Operand, Reg};

/// Flattens affine chains in `block`. Returns the number of operations
/// rewritten.
pub fn flatten_induction(func: &mut Function, block: BlockId) -> usize {
    // value[r] = Some((base, off)): r currently holds entry(base) + off.
    let mut value: HashMap<Reg, (Reg, i64)> = HashMap::new();
    let mut redefined: HashSet<Reg> = HashSet::new();
    let mut rewritten = 0;

    let ops = &mut func.block_mut(block).ops;
    for op in ops.iter_mut() {
        // Affine view of one source operand, valid only while its base
        // register still holds its entry value.
        let affine = |s: Operand, value: &HashMap<Reg, (Reg, i64)>, redefined: &HashSet<Reg>| {
            match s {
                Operand::Reg(r) => {
                    let (base, off) = value.get(&r).copied().unwrap_or((r, 0));
                    let usable = if base == r && off == 0 {
                        !redefined.contains(&r) // r itself is the entry value
                    } else {
                        !redefined.contains(&base)
                    };
                    if usable {
                        Some((base, off))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        };

        // Derive the result's affine value (and possibly rewrite) for
        // unguarded affine ops.
        let mut result_affine: Option<(Reg, i64)> = None;
        if op.guard.is_none() {
            match op.opcode {
                Opcode::Add | Opcode::Sub => {
                    let sign = if op.opcode == Opcode::Sub { -1 } else { 1 };
                    let reg_imm = match (op.srcs[0], op.srcs[1]) {
                        (Operand::Reg(_), Operand::Imm(k)) => Some((op.srcs[0], sign * k)),
                        (Operand::Imm(k), Operand::Reg(_)) if sign == 1 => {
                            Some((op.srcs[1], k))
                        }
                        _ => None,
                    };
                    if let Some((reg_src, k)) = reg_imm {
                        if let Some((base, off)) = affine(reg_src, &value, &redefined) {
                            let total = off + k;
                            // Rewrite to compute straight off the base
                            // (unless it already does).
                            let already = op.opcode == Opcode::Add
                                && op.srcs == vec![Operand::Reg(base), Operand::Imm(total)];
                            if !already {
                                op.opcode = Opcode::Add;
                                op.srcs = vec![Operand::Reg(base), Operand::Imm(total)];
                                rewritten += 1;
                            }
                            result_affine = Some((base, total));
                        }
                    }
                }
                Opcode::Mov => {
                    if let Operand::Reg(_) = op.srcs[0] {
                        if let Some((base, off)) = affine(op.srcs[0], &value, &redefined) {
                            if off != 0 {
                                op.opcode = Opcode::Add;
                                op.srcs = vec![Operand::Reg(base), Operand::Imm(off)];
                                rewritten += 1;
                            } else if op.srcs[0] != Operand::Reg(base) {
                                op.srcs = vec![Operand::Reg(base)];
                                rewritten += 1;
                            }
                            result_affine = Some((base, off));
                        }
                    }
                }
                _ => {}
            }
        }

        // Update tracking for destinations.
        for d in &op.dests {
            if let Dest::Reg(r) = *d {
                redefined.insert(r);
                match result_affine {
                    Some(v) => {
                        value.insert(r, v);
                    }
                    None => {
                        value.remove(&r);
                    }
                }
            }
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{FunctionBuilder, Operand};
    use epic_interp::{diff_test, Input};

    #[test]
    fn flattens_advance_chain() {
        let mut fb = FunctionBuilder::new("chain");
        let b = fb.block("b");
        fb.switch_to(b);
        let a = fb.reg();
        let a1 = fb.add(a.into(), Operand::Imm(1)); // a+1
        let a2 = fb.add(a1.into(), Operand::Imm(1)); // should become a+2
        let a3 = fb.add(a2.into(), Operand::Imm(1)); // should become a+3
        let d = fb.movi(0);
        fb.store(d, a3.into());
        fb.ret();
        let mut f = fb.finish();
        let n = flatten_induction(&mut f, b);
        assert!(n >= 2, "{n}");
        let ops = &f.block(b).ops;
        assert_eq!(ops[1].srcs, vec![Operand::Reg(a), Operand::Imm(2)]);
        assert_eq!(ops[2].srcs, vec![Operand::Reg(a), Operand::Imm(3)]);
        let _ = (a1, a2);
    }

    #[test]
    fn respects_base_redefinition() {
        let mut fb = FunctionBuilder::new("redef");
        let b = fb.block("b");
        fb.switch_to(b);
        let a = fb.reg();
        let a1 = fb.add(a.into(), Operand::Imm(1));
        fb.mov_to(a, Operand::Imm(99)); // a redefined: a1's base is stale
        let a2 = fb.add(a1.into(), Operand::Imm(1)); // must NOT become add(a, 2)
        let d = fb.movi(0);
        fb.store(d, a2.into());
        fb.ret();
        let mut f = fb.finish();
        flatten_induction(&mut f, b);
        let ops = &f.block(b).ops;
        assert_eq!(ops[2].srcs[0], Operand::Reg(a1), "stale base must not be used");
    }

    #[test]
    fn commit_becomes_single_bump() {
        // a2 = a+1; a = mov(a2); a3 = a+1 (after commit) …
        let mut fb = FunctionBuilder::new("commit");
        let b = fb.block("b");
        fb.switch_to(b);
        let a = fb.reg();
        let a2 = fb.add(a.into(), Operand::Imm(1));
        fb.mov_to(a, a2.into()); // becomes a = add(a, 1)
        let d = fb.movi(0);
        fb.store(d, a.into());
        fb.ret();
        let mut f = fb.finish();
        flatten_induction(&mut f, b);
        let ops = &f.block(b).ops;
        assert_eq!(ops[1].opcode, Opcode::Add);
        assert_eq!(ops[1].srcs, vec![Operand::Reg(a), Operand::Imm(1)]);
    }

    #[test]
    fn preserves_semantics_on_strcpy_like_body() {
        let mut fb = FunctionBuilder::new("s");
        let b = fb.block("b");
        fb.switch_to(b);
        let a = fb.reg();
        let mut cur = a;
        for _ in 0..4 {
            let nxt = fb.add(cur.into(), Operand::Imm(1));
            let v = fb.load(nxt);
            let dst = fb.add(nxt.into(), Operand::Imm(100));
            fb.store(dst, v.into());
            cur = nxt;
        }
        fb.ret();
        let f = fb.finish();
        let mut g = f.clone();
        let n = flatten_induction(&mut g, b);
        assert!(n > 0);
        let input = Input::new().memory_size(256).with_memory(0, &[9, 8, 7, 6, 5]).with_reg(a, 0);
        diff_test(&f, &g, &input).unwrap();
    }

    #[test]
    fn guarded_defs_are_left_alone() {
        let mut fb = FunctionBuilder::new("g");
        let b = fb.block("b");
        fb.switch_to(b);
        let a = fb.reg();
        let p = fb.pred();
        let a1 = fb.add(a.into(), Operand::Imm(1));
        fb.set_guard(Some(p));
        let a2 = fb.add(a1.into(), Operand::Imm(1)); // guarded: not rewritten
        fb.set_guard(None);
        let d = fb.movi(0);
        fb.store(d, a2.into());
        fb.ret();
        let mut f = fb.finish();
        flatten_induction(&mut f, b);
        assert_eq!(f.block(b).ops[1].srcs[0], Operand::Reg(a1));
    }
}
