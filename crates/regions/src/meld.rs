//! Instruction melding (full diamonds).
//!
//! Where [`if_convert`](crate::if_convert) handles *triangles* (one side
//! block, one fall-through path), melding targets the full diamond: a
//! branch whose taken side `S` and fall-through side `F` are both short
//! straight-line blocks that rejoin at the same block `J`. Both sides are
//! melded into one straight-line region under complementary predicates,
//! eliminating the branch and both side blocks' control transfers:
//!
//! ```text
//!   A:  ...                            A:  ...
//!       branch p -> S                      q = cmpp.un (p == 0)
//!   F:  f₁ ; f₂ ; jump J  ==becomes==>     s₁ if p
//!   S:  s₁ ; s₂ ; jump J                   s₂ if p
//!   J:  ...                            F:  f₁ if q
//!                                          f₂ if q ; jump J
//!                                      J:  ...
//! ```
//!
//! The complement predicate `q = ¬p` is materialized with a `cmpp` against
//! the *value* of `p` at the branch point, so melding never needs to know
//! how `p` was originally defined. Every melded operation executes exactly
//! when it executed in the original program (no speculation is involved),
//! so side-effecting operations — stores, divides — are safe in either
//! side. This is the alternative branch-elimination family to ICBM: CPR
//! collapses branch *height* along a trace, melding removes the branch
//! (and both its side blocks) outright.

use epic_ir::{BlockId, CmpCond, Dest, Function, Opcode, Operand, PredAction, Profile};

/// Heuristic bounds for melding.
#[derive(Clone, Copy, Debug)]
pub struct MeldConfig {
    /// Meld only branches whose taken probability is at least this
    /// (0.0 melds even never-taken branches).
    pub min_taken: f64,
    /// ... and at most this (1.0 melds even always-taken branches).
    /// Melding classically targets the unbiased middle, where both sides
    /// execute often enough that a misprediction would hurt either way.
    pub max_taken: f64,
    /// Maximum size of *each* side in operations (excluding its jump).
    pub max_ops: usize,
}

impl Default for MeldConfig {
    fn default() -> Self {
        MeldConfig { min_taken: 0.0, max_taken: 1.0, max_ops: 24 }
    }
}

/// Melds every matching diamond in `func`. Returns the number of branches
/// eliminated.
pub fn meld(func: &mut Function, profile: &Profile, cfg: &MeldConfig) -> usize {
    let mut melded = 0;
    while let Some(c) = find_candidate(func, profile, cfg) {
        apply(func, &c);
        melded += 1;
    }
    if melded > 0 {
        crate::remove_unreachable(func);
    }
    melded
}

/// One meldable diamond: the branch block, the position of its branch, and
/// the two sides.
struct Candidate {
    block: BlockId,
    branch_pos: usize,
    taken: BlockId,
    fall: BlockId,
}

/// Checks that `side` is a meldable diamond side: single predecessor
/// `from`, at most `max_ops` straight-line unguarded body operations, and
/// a trailing unconditional `pbr`/`branch` pair. Returns the join block it
/// jumps to.
fn side_join(
    func: &Function,
    preds: &std::collections::HashMap<BlockId, Vec<BlockId>>,
    from: BlockId,
    side: BlockId,
    max_ops: usize,
) -> Option<BlockId> {
    if side == func.entry() {
        return None;
    }
    if preds.get(&side).map(|p| p.as_slice()) != Some(&[from]) {
        return None;
    }
    let sblk = func.try_block(side)?;
    let n = sblk.ops.len();
    if n < 2 || n > max_ops + 2 {
        return None;
    }
    let (body, tail) = sblk.ops.split_at(n - 2);
    let tail_ok = tail[0].opcode == Opcode::Pbr
        && tail[1].opcode == Opcode::Branch
        && tail[1].guard.is_none();
    if !tail_ok {
        return None;
    }
    if body
        .iter()
        .any(|o| o.guard.is_some() || o.is_branch() || o.opcode == Opcode::Pbr || o.is_cmpp())
    {
        return None;
    }
    tail[1].branch_target()
}

fn find_candidate(func: &Function, profile: &Profile, cfg: &MeldConfig) -> Option<Candidate> {
    let preds = func.predecessors();
    for block in func.blocks_in_layout() {
        for (pos, br) in block.branches() {
            if br.opcode != Opcode::Branch || br.guard.is_none() {
                continue;
            }
            let Some(taken) = br.branch_target() else { continue };
            if taken == block.id {
                continue; // back edge
            }
            // Profile gate: only branches in the configured taken-ratio
            // window (when the branch was observed at all).
            if let Some(r) = profile.taken_ratio(br.id) {
                if r < cfg.min_taken || r > cfg.max_taken {
                    continue;
                }
            }
            // The branch must be the block's last operation: anything after
            // it is implicitly guarded by ¬p and would need the same
            // re-guarding as the fall-through side.
            if pos + 1 != block.ops.len() {
                continue;
            }
            let Some(fall) = func.fallthrough_of(block.id) else { continue };
            if taken == fall {
                continue;
            }
            let Some(join_f) = side_join(func, &preds, block.id, fall, cfg.max_ops) else {
                continue;
            };
            let Some(join_s) = side_join(func, &preds, block.id, taken, cfg.max_ops) else {
                continue;
            };
            // Both sides must rejoin at the same third block.
            if join_f != join_s || join_f == taken || join_f == fall || join_f == block.id {
                continue;
            }
            return Some(Candidate { block: block.id, branch_pos: pos, taken, fall });
        }
    }
    None
}

fn apply(func: &mut Function, c: &Candidate) {
    let guard = func.block(c.block).ops[c.branch_pos].guard.expect("conditional");

    // Predicated copies of the taken side's body (minus its trailing jump).
    let taken_ops: Vec<epic_ir::Op> = {
        let sblk = func.block(c.taken);
        let n = sblk.ops.len();
        sblk.ops[..n - 2].to_vec()
    };
    let mut predicated = Vec::with_capacity(taken_ops.len() + 1);

    // Materialize the complement predicate from the *value* of the guard:
    // q = (p == 0). UN writes on both guard outcomes, but the op itself is
    // unguarded, so q is always exactly ¬p here.
    let q = func.new_pred();
    predicated.push(epic_ir::Op {
        id: func.new_op_id(),
        opcode: Opcode::Cmpp(CmpCond::Eq),
        dests: vec![Dest::Pred(q, PredAction::UN)],
        srcs: vec![Operand::Pred(guard), Operand::Imm(0)],
        guard: None,
    });
    for op in &taken_ops {
        let mut copy = func.clone_op(op);
        copy.guard = Some(guard);
        predicated.push(copy);
    }

    // Remove the branch (and its pbr when adjacent) and append the melded
    // taken side at the end of the branch block.
    let ops = &mut func.block_mut(c.block).ops;
    ops.remove(c.branch_pos);
    if c.branch_pos > 0 && ops[c.branch_pos - 1].opcode == Opcode::Pbr {
        let target_matches = ops[c.branch_pos - 1].branch_target() == Some(c.taken);
        if target_matches {
            ops.remove(c.branch_pos - 1);
        }
    }
    ops.extend(predicated);

    // Guard the fall-through side's body (its trailing jump to the join
    // stays unguarded, keeping the block's control shape). The two sides'
    // guards are complementary, so exactly one side's operations execute —
    // their relative order cannot matter.
    let fops = &mut func.block_mut(c.fall).ops;
    let n = fops.len();
    for op in &mut fops[..n - 2] {
        op.guard = Some(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_interp::{diff_test, run, Input};
    use epic_ir::{FunctionBuilder, Reg};

    /// A diamond: store 1 to slot 9 when `mem[x] > 5`, otherwise store 2 to
    /// slot 10; both sides rejoin to store the loaded value at slot 8.
    fn diamond() -> (Function, Reg) {
        let mut fb = FunctionBuilder::new("dia");
        let a = fb.block("a");
        let fall = fb.block("fall");
        let side = fb.block("side");
        let join = fb.block("join");
        fb.switch_to(a);
        let x = fb.reg();
        let v = fb.load(x);
        let (t, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(5));
        fb.branch_if(t, side);
        fb.switch_to(fall);
        let lo = fb.movi(10);
        fb.store(lo, Operand::Imm(2));
        fb.jump(join);
        fb.switch_to(side);
        let hi = fb.movi(9);
        fb.store(hi, Operand::Imm(1));
        fb.jump(join);
        fb.switch_to(join);
        let d = fb.movi(8);
        fb.store(d, v.into());
        fb.ret();
        (fb.finish(), x)
    }

    fn inputs(x: Reg) -> (Input, Input) {
        let hi = Input::new().memory_size(16).with_memory(0, &[7]).with_reg(x, 0);
        let lo = Input::new().memory_size(16).with_memory(0, &[3]).with_reg(x, 0);
        (hi, lo)
    }

    #[test]
    fn melds_diamond_and_preserves_semantics() {
        let (f, x) = diamond();
        let (input_hi, input_lo) = inputs(x);
        let profile = run(&f, &input_hi).unwrap().profile;
        let mut g = f.clone();
        let n = meld(&mut g, &profile, &MeldConfig::default());
        assert_eq!(n, 1);
        epic_ir::verify(&g).unwrap();
        // The conditional branch is gone, and so is the taken-side block.
        assert!(g
            .ops_in_layout()
            .all(|(_, o)| !(o.opcode == Opcode::Branch && o.guard.is_some())));
        assert_eq!(g.layout.len(), 3);
        diff_test(&f, &g, &input_hi).unwrap();
        diff_test(&f, &g, &input_lo).unwrap();
    }

    #[test]
    fn profile_window_gates_melding() {
        let (f, x) = diamond();
        let (input_hi, _) = inputs(x);
        let profile = run(&f, &input_hi).unwrap().profile; // branch 100% taken
        let mut g = f.clone();
        let cfg = MeldConfig { min_taken: 0.2, max_taken: 0.8, ..Default::default() };
        assert_eq!(meld(&mut g, &profile, &cfg), 0, "biased branch left alone");
    }

    #[test]
    fn size_limit_gates_melding() {
        let (f, x) = diamond();
        let (input_hi, _) = inputs(x);
        let profile = run(&f, &input_hi).unwrap().profile;
        let mut g = f.clone();
        let cfg = MeldConfig { max_ops: 0, ..Default::default() };
        assert_eq!(meld(&mut g, &profile, &cfg), 0);
    }

    #[test]
    fn triangle_is_left_to_if_conversion() {
        // A triangle (fall-through path *is* the join) has no second side
        // to meld; the pattern requires both sides to be distinct blocks
        // jumping to a shared join.
        let mut fb = FunctionBuilder::new("tri");
        let a = fb.block("a");
        let join = fb.block("join");
        let side = fb.block("side");
        fb.switch_to(a);
        let x = fb.reg();
        let v = fb.load(x);
        let (t, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(5));
        fb.branch_if(t, side);
        fb.switch_to(join);
        fb.ret();
        fb.switch_to(side);
        let hi = fb.movi(9);
        fb.store(hi, Operand::Imm(1));
        fb.jump(join);
        let f = fb.finish();
        let mut g = f.clone();
        assert_eq!(meld(&mut g, &Profile::new(), &MeldConfig::default()), 0);
    }

    #[test]
    fn side_with_own_branch_is_rejected() {
        let mut fb = FunctionBuilder::new("nested");
        let a = fb.block("a");
        let fall = fb.block("fall");
        let side = fb.block("side");
        let join = fb.block("join");
        let deep = fb.block("deep");
        fb.switch_to(a);
        let x = fb.reg();
        let v = fb.load(x);
        let (t, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(5));
        fb.branch_if(t, side);
        fb.switch_to(fall);
        let lo = fb.movi(10);
        fb.store(lo, Operand::Imm(2));
        fb.jump(join);
        fb.switch_to(side);
        let (u, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(50));
        fb.branch_if(u, deep);
        fb.jump(join);
        fb.switch_to(join);
        fb.ret();
        fb.switch_to(deep);
        fb.ret();
        let f = fb.finish();
        let mut g = f.clone();
        assert_eq!(meld(&mut g, &Profile::new(), &MeldConfig::default()), 0);
    }

    #[test]
    fn sides_with_different_joins_are_rejected() {
        let mut fb = FunctionBuilder::new("split");
        let a = fb.block("a");
        let fall = fb.block("fall");
        let side = fb.block("side");
        let j1 = fb.block("j1");
        let j2 = fb.block("j2");
        fb.switch_to(a);
        let x = fb.reg();
        let v = fb.load(x);
        let (t, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(5));
        fb.branch_if(t, side);
        fb.switch_to(fall);
        let lo = fb.movi(10);
        fb.store(lo, Operand::Imm(2));
        fb.jump(j1);
        fb.switch_to(side);
        let hi = fb.movi(9);
        fb.store(hi, Operand::Imm(1));
        fb.jump(j2);
        fb.switch_to(j1);
        fb.ret();
        fb.switch_to(j2);
        fb.ret();
        let f = fb.finish();
        let mut g = f.clone();
        assert_eq!(meld(&mut g, &Profile::new(), &MeldConfig::default()), 0);
    }

    #[test]
    fn branch_with_trailing_ops_is_rejected() {
        // Ops after the branch run only on the fall-through path; melding
        // would need to re-guard them too. The pass requires the branch to
        // be its block's last operation instead.
        let mut fb = FunctionBuilder::new("midblock");
        let a = fb.block("a");
        let fall = fb.block("fall");
        let side = fb.block("side");
        let join = fb.block("join");
        fb.switch_to(a);
        let x = fb.reg();
        let v = fb.load(x);
        let (t, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(5));
        fb.branch_if(t, side);
        let d = fb.movi(11);
        fb.store(d, Operand::Imm(3)); // fall-through-only side effect
        fb.switch_to(fall);
        let lo = fb.movi(10);
        fb.store(lo, Operand::Imm(2));
        fb.jump(join);
        fb.switch_to(side);
        let hi = fb.movi(9);
        fb.store(hi, Operand::Imm(1));
        fb.jump(join);
        fb.switch_to(join);
        fb.ret();
        let f = fb.finish();
        let (input_hi, input_lo) = inputs(x);
        let profile = run(&f, &input_hi).unwrap().profile;
        let mut g = f.clone();
        meld(&mut g, &profile, &MeldConfig::default());
        diff_test(&f, &g, &input_hi).unwrap();
        diff_test(&f, &g, &input_lo).unwrap();
    }

    #[test]
    fn melded_sides_with_shared_destinations_stay_exclusive() {
        // Both sides write the same register with different values; only
        // the architecturally-executed side's write may survive.
        let mut fb = FunctionBuilder::new("shared");
        let a = fb.block("a");
        let fall = fb.block("fall");
        let side = fb.block("side");
        let join = fb.block("join");
        fb.switch_to(a);
        let x = fb.reg();
        let r = fb.reg();
        fb.mov_to(r, Operand::Imm(0));
        let v = fb.load(x);
        let (t, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(5));
        fb.branch_if(t, side);
        fb.switch_to(fall);
        fb.mov_to(r, Operand::Imm(2));
        fb.jump(join);
        fb.switch_to(side);
        fb.mov_to(r, Operand::Imm(1));
        fb.jump(join);
        fb.switch_to(join);
        let d = fb.movi(8);
        fb.store(d, r.into());
        fb.ret();
        let f = fb.finish();
        let (input_hi, input_lo) = inputs(x);
        let profile = run(&f, &input_hi).unwrap().profile;
        let mut g = f.clone();
        assert_eq!(meld(&mut g, &profile, &MeldConfig::default()), 1);
        epic_ir::verify(&g).unwrap();
        diff_test(&f, &g, &input_hi).unwrap();
        diff_test(&f, &g, &input_lo).unwrap();
    }
}
