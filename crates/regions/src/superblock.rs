//! Profile-driven superblock formation.
//!
//! Selects hot fall-through traces and merges each into a single IR block —
//! a single-entry, multi-exit linear region with side-exit branches, i.e. a
//! superblock in the sense of [H+93]. Side *entrances* into the middle of a
//! trace are handled by tail duplication: the original interior blocks stay
//! in the layout as the duplicate tail, and only branches targeting the
//! trace *head* are redirected to the new superblock.

use std::collections::{HashMap, HashSet};

use epic_ir::{BlockId, Function, Profile};

/// Configuration for trace selection.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Minimum fall-through probability to extend a trace past a block.
    pub min_prob: f64,
    /// Maximum number of operations in one superblock.
    pub max_ops: usize,
    /// Minimum dynamic entry count for a block to seed or join a trace.
    pub min_count: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { min_prob: 0.65, max_ops: 400, min_count: 16 }
    }
}

/// Forms superblocks over the hot traces of `func` and returns the
/// transformed function.
///
/// Traces grow along fall-through edges only (the hot path is assumed to be
/// laid out contiguously, which is how the workload builders and real trace
/// layout both arrange code). Interior trace blocks with side entrances
/// remain as tail duplicates; unreachable remnants are removed.
pub fn form_superblocks(func: &Function, profile: &Profile, cfg: &TraceConfig) -> Function {
    let mut out = func.clone();

    // Fall-through frequency of each block: entries minus taken branches.
    let ft_freq = |f: &Function, b: BlockId| -> u64 {
        let entries = profile.entry_count(b);
        let taken: u64 = f.block(b).branches().map(|(_, op)| profile.taken_count(op.id)).sum();
        entries.saturating_sub(taken)
    };

    // Grow traces greedily from the hottest blocks.
    let mut order: Vec<BlockId> = out.layout.clone();
    order.sort_by_key(|&b| std::cmp::Reverse(profile.entry_count(b)));
    let mut in_trace: HashSet<BlockId> = HashSet::new();
    let mut traces: Vec<Vec<BlockId>> = Vec::new();

    for &seed in &order {
        if in_trace.contains(&seed) || profile.entry_count(seed) < cfg.min_count {
            continue;
        }
        let mut trace = vec![seed];
        in_trace.insert(seed);
        let mut ops = out.block(seed).ops.len();
        let mut cur = seed;
        loop {
            // Cannot fall out of a block that ends unconditionally.
            if out.block(cur).ends_with_unconditional_exit() {
                break;
            }
            let Some(next) = out.fallthrough_of(cur) else { break };
            if in_trace.contains(&next) || trace.contains(&next) {
                break;
            }
            let entries = profile.entry_count(cur);
            if entries < cfg.min_count {
                break;
            }
            let p = ft_freq(&out, cur) as f64 / entries as f64;
            if p < cfg.min_prob {
                break;
            }
            // The fall-through edge must also dominate next's entries
            // closely enough to be the natural trace continuation.
            let next_entries = profile.entry_count(next).max(1);
            if (ft_freq(&out, cur) as f64) / (next_entries as f64) < cfg.min_prob {
                break;
            }
            if ops + out.block(next).ops.len() > cfg.max_ops {
                break;
            }
            ops += out.block(next).ops.len();
            trace.push(next);
            in_trace.insert(next);
            cur = next;
        }
        if trace.len() > 1 {
            traces.push(trace);
        }
    }

    // Merge each trace into a fresh superblock.
    let mut redirect: HashMap<BlockId, BlockId> = HashMap::new();
    for trace in &traces {
        let head = trace[0];
        let name = format!("{}_sb", out.block(head).name);
        let sb = out.add_detached_block(name);
        let mut merged = Vec::new();
        for (k, &b) in trace.iter().enumerate() {
            let src_ops = out.block(b).ops.clone();
            let next = trace.get(k + 1).copied();
            let mut i = 0;
            while i < src_ops.len() {
                let op = &src_ops[i];
                // Drop an unconditional pbr/branch pair targeting the next
                // trace block: it becomes a fall-through inside the
                // superblock.
                if let Some(n) = next {
                    if op.opcode == epic_ir::Opcode::Pbr
                        && op.branch_target() == Some(n)
                        && i + 1 < src_ops.len()
                        && src_ops[i + 1].opcode == epic_ir::Opcode::Branch
                        && src_ops[i + 1].guard.is_none()
                        && src_ops[i + 1].branch_target() == Some(n)
                    {
                        i += 2;
                        continue;
                    }
                }
                merged.push(out.clone_op(op));
                i += 1;
            }
        }
        out.block_mut(sb).ops = merged;
        // Place the superblock where the head was and arrange the correct
        // fall-through: if the final trace block could fall through to some
        // block G, append an explicit jump to G.
        let last = *trace.last().expect("trace non-empty");
        if !out.block(last).ends_with_unconditional_exit() {
            if let Some(g) = out.fallthrough_of(last) {
                append_jump(&mut out, sb, g);
            }
        }
        let head_pos = out.layout.iter().position(|&b| b == head).expect("head in layout");
        out.layout[head_pos] = sb;
        redirect.insert(head, sb);
    }

    // Redirect every branch that targeted a trace head to the superblock.
    // A superblock is single-entry *at its top*, so entering at the head is
    // always legal; entrances into the middle of a trace keep targeting the
    // original interior blocks, which survive as duplicate tails.
    let all_blocks: Vec<BlockId> = out.layout.clone();
    for b in all_blocks {
        for op in &mut out.block_mut(b).ops {
            if let Some(t) = op.branch_target() {
                if let Some(&new) = redirect.get(&t) {
                    op.set_branch_target(new);
                }
            }
        }
    }

    crate::remove_unreachable(&mut out);
    out
}

fn append_jump(func: &mut Function, block: BlockId, target: BlockId) {
    let btr = func.new_reg();
    let pbr = epic_ir::Op {
        id: func.new_op_id(),
        opcode: epic_ir::Opcode::Pbr,
        dests: vec![epic_ir::Dest::Reg(btr)],
        srcs: vec![epic_ir::Operand::Label(target)],
        guard: None,
    };
    let br = epic_ir::Op {
        id: func.new_op_id(),
        opcode: epic_ir::Opcode::Branch,
        dests: vec![],
        srcs: vec![epic_ir::Operand::Reg(btr), epic_ir::Operand::Label(target)],
        guard: None,
    };
    let ops = &mut func.block_mut(block).ops;
    ops.push(pbr);
    ops.push(br);
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{CmpCond, FunctionBuilder, Operand};
    use epic_interp::{diff_test, run, Input};

    /// A two-block hot chain inside a loop:
    /// head: load, exit-if-zero; body: store, loop-back.
    fn chained_loop() -> (epic_ir::Function, epic_ir::Reg) {
        let mut b = FunctionBuilder::new("chain");
        let head = b.block("head");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(head);
        let a = b.reg();
        let v = b.load(a);
        let (z, _nz) = b.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
        b.branch_if(z, exit);
        b.switch_to(body);
        let d = b.add(a.into(), Operand::Imm(16));
        b.store(d, v.into());
        let a2 = b.add(a.into(), Operand::Imm(1));
        b.mov_to(a, a2.into());
        b.jump(head);
        b.switch_to(exit);
        b.ret();
        (b.finish(), a)
    }

    fn input(a: epic_ir::Reg) -> Input {
        Input::new()
            .memory_size(64)
            .with_memory(0, &[5, 6, 7, 8, 0])
            .with_reg(a, 0)
    }

    #[test]
    fn merges_hot_chain_into_superblock() {
        let (f, a) = chained_loop();
        let profile = run(&f, &input(a)).unwrap().profile;
        let sb = form_superblocks(&f, &profile, &TraceConfig { min_count: 1, ..Default::default() });
        epic_ir::verify(&sb).unwrap();
        // The head+body chain merged: some block now has 2+ branches.
        let max_branches = sb.blocks_in_layout().map(|b| b.branch_count()).max().unwrap();
        assert!(max_branches >= 2, "superblock should contain the exit and back branches:\n{sb}");
        // Semantics preserved.
        diff_test(&f, &sb, &input(a)).unwrap();
    }

    #[test]
    fn cold_code_is_left_alone() {
        let (f, a) = chained_loop();
        let profile = run(&f, &input(a)).unwrap().profile;
        // Absurd threshold: nothing is hot enough.
        let sb = form_superblocks(
            &f,
            &profile,
            &TraceConfig { min_count: 1_000_000, ..Default::default() },
        );
        assert_eq!(sb.layout.len(), f.layout.len());
    }

    #[test]
    fn respects_max_ops() {
        let (f, a) = chained_loop();
        let profile = run(&f, &input(a)).unwrap().profile;
        let sb = form_superblocks(
            &f,
            &profile,
            &TraceConfig { min_count: 1, max_ops: 3, ..Default::default() },
        );
        // Trace could not grow: layout unchanged.
        assert_eq!(sb.layout.len(), f.layout.len());
    }

    #[test]
    fn biased_diamond_gets_tail_duplicated() {
        // head branches to cold; hot path falls through to join; join has a
        // side entrance from cold. After formation the hot path is one
        // superblock and the join survives as a duplicate tail.
        let mut b = FunctionBuilder::new("diamond");
        let head = b.block("head");
        let join = b.block("join");
        let cold = b.block("cold");
        let exit = b.block("exit");
        b.switch_to(head);
        let x = b.reg();
        let v = b.load(x);
        let (t, _) = b.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(100));
        b.branch_if(t, cold);
        b.switch_to(join);
        let d = b.movi(10);
        b.store(d, v.into());
        b.jump(exit);
        b.switch_to(cold);
        let d2 = b.movi(11);
        b.store(d2, Operand::Imm(1));
        b.jump(join);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        let inp = Input::new().memory_size(16).with_reg(x, 0);
        let profile = run(&f, &inp).unwrap().profile;
        let sb = form_superblocks(&f, &profile, &TraceConfig { min_count: 1, ..Default::default() });
        epic_ir::verify(&sb).unwrap();
        // join must still exist (side entrance from cold).
        assert!(sb.layout.contains(&join), "join kept as duplicate tail:\n{sb}");
        diff_test(&f, &sb, &inp).unwrap();
        // Also equivalent on the cold path.
        let inp_cold = Input::new()
            .memory_size(16)
            .with_memory(0, &[200])
            .with_reg(x, 0);
        diff_test(&f, &sb, &inp_cold).unwrap();
    }
}

#[cfg(test)]
mod loop_tests {
    use super::*;
    use epic_interp::{diff_test, run, Input};
    use epic_ir::{CmpCond, FunctionBuilder, Operand};

    /// A two-block loop (head + body) with a rare side handler merges into a
    /// single self-looping superblock, and the back edge is redirected to
    /// the merged block.
    #[test]
    fn loop_chain_becomes_self_loop() {
        let mut fb = FunctionBuilder::new("loop2");
        let head = fb.block("head");
        let body = fb.block("body");
        let exit = fb.block("exit");
        fb.switch_to(head);
        let p = fb.reg();
        let v = fb.load(p);
        let (z, _) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
        fb.branch_if(z, exit);
        fb.switch_to(body);
        let o = fb.add(p.into(), Operand::Imm(64));
        fb.store(o, v.into());
        let p2 = fb.add(p.into(), Operand::Imm(1));
        fb.mov_to(p, p2.into());
        fb.jump(head);
        fb.switch_to(exit);
        fb.ret();
        let f = fb.finish();
        let input = Input::new()
            .memory_size(256)
            .with_memory(0, &[3, 2, 1, 0])
            .with_reg(p, 0);
        let profile = run(&f, &input).unwrap().profile;
        let sb =
            form_superblocks(&f, &profile, &TraceConfig { min_count: 1, ..Default::default() });
        epic_ir::verify(&sb).unwrap();
        // The merged block loops back to itself.
        let merged = sb
            .blocks_in_layout()
            .find(|b| b.name.ends_with("_sb"))
            .expect("superblock formed");
        let back = merged
            .ops
            .iter()
            .rev()
            .find(|o| o.opcode == epic_ir::Opcode::Branch)
            .expect("has back edge");
        assert_eq!(back.branch_target(), Some(merged.id));
        diff_test(&f, &sb, &input).unwrap();
    }

    /// Formation is idempotent: running it twice changes nothing further.
    #[test]
    fn formation_is_idempotent() {
        let mut fb = FunctionBuilder::new("idem");
        let a = fb.block("a");
        let b = fb.block("b");
        fb.switch_to(a);
        let x = fb.movi(1);
        let _ = fb.add(x.into(), Operand::Imm(1));
        fb.switch_to(b);
        fb.ret();
        let f = fb.finish();
        let input = Input::new().memory_size(4);
        let profile = run(&f, &input).unwrap().profile;
        let cfg = TraceConfig { min_count: 1, ..Default::default() };
        let once = form_superblocks(&f, &profile, &cfg);
        let profile2 = run(&once, &input).unwrap().profile;
        let twice = form_superblocks(&once, &profile2, &cfg);
        assert_eq!(once.static_op_count(), twice.static_op_count());
        assert_eq!(once.layout.len(), twice.layout.len());
    }
}
