//! Traditional if-conversion (triangle hammocks).
//!
//! The paper's evaluation deliberately applies *no* traditional
//! if-conversion ("While these experiments apply FRP conversion to linear
//! superblocks, no traditional if-conversion has been applied. The compiler
//! could employ traditional if-conversion to eliminate many unbiased
//! branches and thus further improve the effectiveness of control CPR").
//! This pass implements that enhancement so the claim can be tested: it
//! predicates the side block of a triangle-shaped hammock, eliminating the
//! branch entirely. With the side block gone, the loop body loses its side
//! *entrance*, which in turn lets unrolling rename the loop induction
//! registers and lets ICBM chain CPR blocks across iterations.
//!
//! Pattern converted (S has exactly one predecessor and no branches of its
//! own):
//!
//! ```text
//!   A:  ...                          A:  ...
//!       branch p -> S                    s₁ if p
//!   J:  ...            ==becomes==>      s₂ if p
//!   ...                                  ...
//!   S:  s₁ ; s₂ ; jump J             J:  ...
//! ```

use epic_ir::{BlockId, Function, Opcode, Profile};

/// Heuristic bounds for if-conversion.
#[derive(Clone, Copy, Debug)]
pub struct IfConvertConfig {
    /// Convert only branches whose taken probability is at least this
    /// (0.0 converts even never-taken branches).
    pub min_taken: f64,
    /// ... and at most this (1.0 converts even always-taken branches).
    /// If-conversion classically targets the unbiased middle.
    pub max_taken: f64,
    /// Maximum side-block size in operations (excluding its jump).
    pub max_ops: usize,
}

impl Default for IfConvertConfig {
    fn default() -> Self {
        IfConvertConfig { min_taken: 0.0, max_taken: 1.0, max_ops: 24 }
    }
}

/// If-converts every matching triangle in `func`. Returns the number of
/// branches eliminated.
pub fn if_convert(func: &mut Function, profile: &Profile, cfg: &IfConvertConfig) -> usize {
    let mut converted = 0;
    while let Some((block, branch_pos, side)) = find_candidate(func, profile, cfg) {
        apply(func, block, branch_pos, side);
        converted += 1;
    }
    if converted > 0 {
        crate::remove_unreachable(func);
    }
    converted
}

fn find_candidate(
    func: &Function,
    profile: &Profile,
    cfg: &IfConvertConfig,
) -> Option<(BlockId, usize, BlockId)> {
    let preds = func.predecessors();
    for block in func.blocks_in_layout() {
        for (pos, br) in block.branches() {
            if br.opcode != Opcode::Branch || br.guard.is_none() {
                continue;
            }
            let Some(side) = br.branch_target() else { continue };
            if side == block.id {
                continue; // back edge
            }
            // Profile gate: only branches in the configured taken-ratio
            // window (when the branch was observed at all).
            if let Some(r) = profile.taken_ratio(br.id) {
                if r < cfg.min_taken || r > cfg.max_taken {
                    continue;
                }
            }
            // The side block: single predecessor, small, straight-line,
            // ending with an unconditional jump back to this block's
            // fall-through successor.
            let Some(join) = func.fallthrough_of(block.id) else { continue };
            if side == join {
                continue;
            }
            if preds.get(&side).map(|p| p.as_slice()) != Some(&[block.id]) {
                continue;
            }
            let sblk = func.block(side);
            if sblk.ops.len() > cfg.max_ops + 2 {
                continue;
            }
            // All ops unguarded and speculation-safe to predicate; the only
            // control transfer is the trailing jump to the join.
            let n = sblk.ops.len();
            if n < 2 {
                continue;
            }
            let (body, tail) = sblk.ops.split_at(n - 2);
            let tail_ok = tail[0].opcode == Opcode::Pbr
                && tail[1].opcode == Opcode::Branch
                && tail[1].guard.is_none()
                && tail[1].branch_target() == Some(join);
            if !tail_ok {
                continue;
            }
            if body.iter().any(|o| {
                o.guard.is_some() || o.is_branch() || o.opcode == Opcode::Pbr || o.is_cmpp()
            }) {
                continue;
            }
            // The branch must be the block's *last operation*. Anything
            // after it only executes on the fall-through path — i.e. it is
            // implicitly guarded by ¬p — so removing the branch would make
            // it (and the appended side body after it) run on both paths.
            if pos + 1 != block.ops.len() {
                continue;
            }
            return Some((block.id, pos, side));
        }
    }
    None
}

fn apply(func: &mut Function, block: BlockId, branch_pos: usize, side: BlockId) {
    let guard = func.block(block).ops[branch_pos].guard.expect("conditional");
    // Predicated copies of the side body (minus its trailing jump).
    let side_ops: Vec<epic_ir::Op> = {
        let sblk = func.block(side);
        let n = sblk.ops.len();
        sblk.ops[..n - 2].to_vec()
    };
    let mut predicated = Vec::with_capacity(side_ops.len());
    for op in &side_ops {
        let mut copy = func.clone_op(op);
        copy.guard = Some(guard);
        predicated.push(copy);
    }
    let ops = &mut func.block_mut(block).ops;
    // Remove the branch (and its pbr when adjacent).
    ops.remove(branch_pos);
    if branch_pos > 0 && ops[branch_pos - 1].opcode == Opcode::Pbr {
        let target_matches = ops[branch_pos - 1].branch_target() == Some(side);
        if target_matches {
            ops.remove(branch_pos - 1);
        }
    }
    // Insert the predicated side body where the branch was (position is now
    // whatever the removals left; append at the end of the block keeps
    // ordering with respect to the join, since nothing after the branch
    // branches away).
    let at = ops.len();
    for (k, op) in predicated.into_iter().enumerate() {
        ops.insert(at + k, op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_interp::{diff_test, run, Input};
    use epic_ir::{CmpCond, FunctionBuilder, Operand};

    /// A triangle: increment a counter on a data-dependent condition.
    fn triangle() -> (Function, epic_ir::Reg) {
        let mut fb = FunctionBuilder::new("tri");
        let a = fb.block("a");
        let join = fb.block("join");
        let side = fb.block("side");
        fb.switch_to(a);
        let x = fb.reg();
        let v = fb.load(x);
        let (t, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(5));
        fb.branch_if(t, side);
        fb.switch_to(join);
        let d = fb.movi(8);
        fb.store(d, v.into());
        fb.ret();
        fb.switch_to(side);
        let big = fb.movi(9);
        fb.store(big, Operand::Imm(1));
        fb.jump(join);
        (fb.finish(), x)
    }

    #[test]
    fn converts_triangle_and_preserves_semantics() {
        let (f, x) = triangle();
        let input_hi = Input::new().memory_size(16).with_memory(0, &[7]).with_reg(x, 0);
        let input_lo = Input::new().memory_size(16).with_memory(0, &[3]).with_reg(x, 0);
        let profile = run(&f, &input_hi).unwrap().profile;
        let mut g = f.clone();
        let n = if_convert(&mut g, &profile, &IfConvertConfig::default());
        assert_eq!(n, 1);
        epic_ir::verify(&g).unwrap();
        // The conditional branch is gone.
        assert!(g
            .ops_in_layout()
            .all(|(_, o)| !(o.opcode == Opcode::Branch && o.guard.is_some())));
        diff_test(&f, &g, &input_hi).unwrap();
        diff_test(&f, &g, &input_lo).unwrap();
    }

    #[test]
    fn profile_window_gates_conversion() {
        let (f, x) = triangle();
        let input = Input::new().memory_size(16).with_memory(0, &[7]).with_reg(x, 0);
        let profile = run(&f, &input).unwrap().profile; // branch 100% taken
        let mut g = f.clone();
        let cfg = IfConvertConfig { min_taken: 0.2, max_taken: 0.8, ..Default::default() };
        assert_eq!(if_convert(&mut g, &profile, &cfg), 0, "biased branch left alone");
    }

    #[test]
    fn size_limit_gates_conversion() {
        let (f, x) = triangle();
        let input = Input::new().memory_size(16).with_memory(0, &[7]).with_reg(x, 0);
        let profile = run(&f, &input).unwrap().profile;
        let mut g = f.clone();
        let cfg = IfConvertConfig { max_ops: 0, ..Default::default() };
        assert_eq!(if_convert(&mut g, &profile, &cfg), 0);
    }

    #[test]
    fn branch_with_trailing_ops_is_rejected() {
        // A triangle whose branch is *not* the last op of its block: the
        // store after the branch only runs on the fall-through path, so
        // converting would execute it (and the appended side body) on both
        // paths. Historical bug: only trailing *branches* were checked.
        let mut fb = FunctionBuilder::new("midblock");
        let a = fb.block("a");
        let join = fb.block("join");
        let side = fb.block("side");
        fb.switch_to(a);
        let x = fb.reg();
        let v = fb.load(x);
        let (t, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(5));
        fb.branch_if(t, side);
        let d = fb.movi(8);
        fb.store(d, Operand::Imm(2)); // fall-through-only side effect
        fb.switch_to(join);
        fb.ret();
        fb.switch_to(side);
        let big = fb.movi(9);
        fb.store(big, Operand::Imm(1));
        fb.jump(join);
        let f = fb.finish();
        let input_hi = Input::new().memory_size(16).with_memory(0, &[7]).with_reg(x, 0);
        let input_lo = Input::new().memory_size(16).with_memory(0, &[3]).with_reg(x, 0);
        let profile = run(&f, &input_hi).unwrap().profile;
        let mut g = f.clone();
        if_convert(&mut g, &profile, &IfConvertConfig::default());
        diff_test(&f, &g, &input_hi).unwrap();
        diff_test(&f, &g, &input_lo).unwrap();
    }

    #[test]
    fn side_with_own_branch_is_rejected() {
        let mut fb = FunctionBuilder::new("nested");
        let a = fb.block("a");
        let join = fb.block("join");
        let side = fb.block("side");
        let deep = fb.block("deep");
        fb.switch_to(a);
        let x = fb.reg();
        let v = fb.load(x);
        let (t, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(5));
        fb.branch_if(t, side);
        fb.switch_to(join);
        fb.ret();
        fb.switch_to(side);
        let (u, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(50));
        fb.branch_if(u, deep);
        fb.jump(join);
        fb.switch_to(deep);
        fb.ret();
        let f = fb.finish();
        let mut g = f.clone();
        assert_eq!(if_convert(&mut g, &Profile::new(), &IfConvertConfig::default()), 0);
    }

    #[test]
    fn workload_side_blocks_convert_and_match() {
        // wc's side block (newline counter) fits the triangle pattern.
        let w = epic_workloads_shim::wc();
        let profile = run(&w.0, &w.1).unwrap().profile;
        let mut g = w.0.clone();
        let n = if_convert(&mut g, &profile, &IfConvertConfig::default());
        assert!(n >= 1, "wc side block converts");
        diff_test(&w.0, &g, &w.1).unwrap();
    }

    /// Minimal local stand-in to avoid a cyclic dev-dependency on
    /// epic-workloads: a wc-like loop with a rare side block.
    mod epic_workloads_shim {
        use super::*;

        pub fn wc() -> (Function, Input) {
            let mut fb = FunctionBuilder::new("wcish");
            let loop_ = fb.block("loop");
            let adv = fb.block("adv");
            let exit = fb.block("exit");
            let side = fb.block("side");
            fb.switch_to(loop_);
            let ptr = fb.reg();
            let lines = fb.reg();
            let v = fb.load(ptr);
            let (z, _) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
            fb.branch_if(z, exit);
            let (nl, _) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(3));
            fb.branch_if(nl, side);
            fb.switch_to(adv);
            let p2 = fb.add(ptr.into(), Operand::Imm(1));
            fb.mov_to(ptr, p2.into());
            fb.jump(loop_);
            fb.switch_to(exit);
            let o = fb.movi(40);
            fb.store(o, lines.into());
            fb.ret();
            fb.switch_to(side);
            let l2 = fb.add(lines.into(), Operand::Imm(1));
            fb.mov_to(lines, l2.into());
            fb.jump(adv);
            let f = fb.finish();
            let input = Input::new()
                .memory_size(64)
                .with_memory(0, &[1, 1, 3, 1, 3, 1, 0])
                .with_reg(ptr, 0);
            (f, input)
        }
    }
}
