//! FRP conversion (paper §4.1, Figures 1 and 6(c)).
//!
//! Rewrites each superblock so that:
//!
//! * every conditional exit branch's guard is computed by a two-target
//!   `cmpp.un.uc` whose `UC` output is the *fall-through FRP* of the code
//!   below the branch, and
//! * every operation below a branch is guarded by that fall-through FRP
//!   instead of depending on the branch by control.
//!
//! After conversion, the branch FRPs in a chain are pairwise disjoint, so
//! the branches "may be reordered during scheduling and they may execute in
//! parallel" — chains of branch dependences become chains of data
//! dependences through the compares, which ICBM then height-reduces.

use epic_ir::{BlockId, Dest, Function, Opcode, PredReg};

/// FRP-converts every block of `func` in place. Returns the number of
/// branches converted.
///
/// Conversion is applied to the maximal prefix of each block's branch chain
/// that matches the convertible pattern; unguarded operations after a
/// converted branch are re-guarded by the branch's fall-through FRP, while
/// already-guarded operations are left untouched (their guards were defined
/// by converted compares upstream, so they already imply the block FRP — the
/// general hyperblock input case of §4.1).
pub fn frp_convert(func: &mut Function) -> usize {
    let blocks: Vec<BlockId> = func.layout.clone();
    let mut converted = 0;
    for b in blocks {
        converted += frp_convert_block(func, b);
    }
    converted
}

fn frp_convert_block(func: &mut Function, block: BlockId) -> usize {
    let nops = func.block(block).ops.len();
    // Current fall-through FRP: None = T (entry condition of the block).
    let mut current_frp: Option<PredReg> = None;
    // Index of the most recently converted branch. The next chain compare
    // must come *after* it: re-guarding a compare with the chain FRP is a
    // no-op on every executed path only when the compare itself is reached
    // exactly when the FRP is true, i.e. when it sits below every converted
    // branch so far. (The degenerate violation: one two-target cmpp feeding
    // two branches — converting the second would guard the cmpp with its
    // own output.)
    let mut last_converted: Option<usize> = None;
    let mut converted = 0;

    let mut i = 0;
    while i < nops {
        let op = &func.block(block).ops[i];
        let is_cond_branch = op.opcode == Opcode::Branch && op.guard.is_some();
        if !is_cond_branch {
            // Re-guard unguarded, non-branch ops by the current FRP.
            // (An unguarded branch is an unconditional jump: the region
            // ends; stop converting past it.)
            if op.opcode == Opcode::Branch && op.guard.is_none() {
                break;
            }
            if op.opcode == Opcode::Ret {
                i += 1;
                continue;
            }
            if func.block(block).ops[i].guard.is_none() {
                func.block_mut(block).ops[i].guard = current_frp;
            }
            i += 1;
            continue;
        }

        let guard = op.guard.expect("conditional branch has a guard");
        // Find the defining cmpp of the guard above the branch.
        let def_idx = (0..i).rev().find(|&j| {
            func.block(block).ops[j]
                .dests
                .iter()
                .any(|d| d.as_pred() == Some(guard))
        });
        let Some(def_idx) = def_idx else {
            // Guard defined outside the block: leave this branch (and the
            // rest of the chain) unconverted; subsequent ops keep their
            // guards. The FRP chain restarts fresh after it.
            current_frp = None;
            i += 1;
            continue;
        };
        let def = &func.block(block).ops[def_idx];
        if !def.is_cmpp() {
            current_frp = None;
            i += 1;
            continue;
        }
        // The compare must be in chain position: below every converted
        // branch, and either unguarded (we will chain it under the current
        // FRP) or already guarded by exactly the current FRP. A compare
        // above a converted branch, or one under an unrelated guard `q`,
        // does not compute the fall-through condition — its complementary
        // output is `q && !eff`, which is false (not "fall through") when
        // `q` is false — so converting would skip ops the original
        // executes.
        if last_converted.is_some_and(|lb| def_idx < lb)
            || (def.guard.is_some() && def.guard != current_frp)
        {
            current_frp = None;
            i += 1;
            continue;
        }
        // Locate or create the complementary (fall-through) output.
        let taken_action = def
            .dests
            .iter()
            .find_map(|d| match d {
                Dest::Pred(p, a) if *p == guard => Some(*a),
                _ => None,
            })
            .expect("guard among dests");
        if taken_action.kind != epic_ir::PredActionKind::Uncond {
            current_frp = None;
            i += 1;
            continue;
        }
        let complement = taken_action.complemented();
        let existing = def.dests.iter().find_map(|d| match d {
            Dest::Pred(p, a) if *p != guard && *a == complement => Some(*p),
            _ => None,
        });
        let fall_through = match existing {
            Some(p) => {
                // The complementary output is the FRP for everything below
                // the branch; a later redefinition would make those reads
                // observe the wrong value. (A freshly created output can
                // never be redefined.)
                let redefined = func.block(block).ops[def_idx + 1..]
                    .iter()
                    .any(|o| o.dests.iter().any(|d| d.as_pred() == Some(p)));
                if redefined {
                    current_frp = None;
                    i += 1;
                    continue;
                }
                p
            }
            None => {
                if def.dests.len() >= 2 {
                    // No room for a second destination: skip conversion.
                    current_frp = None;
                    i += 1;
                    continue;
                }
                let p = func.new_pred();
                func.block_mut(block).ops[def_idx]
                    .dests
                    .push(Dest::Pred(p, complement));
                p
            }
        };
        // Chain the compare itself under the current FRP if unguarded.
        if func.block(block).ops[def_idx].guard.is_none() {
            func.block_mut(block).ops[def_idx].guard = current_frp;
        }
        current_frp = Some(fall_through);
        last_converted = Some(i);
        converted += 1;
        i += 1;
    }
    converted
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_analysis::PredFacts;
    use epic_ir::{CmpCond, FunctionBuilder, Operand};
    use epic_interp::{diff_test, Input};

    /// A plain (unpredicated) superblock with three exit branches, like the
    /// paper's Figure 1(a): stores trapped between branches.
    fn plain_superblock() -> (epic_ir::Function, epic_ir::Reg, BlockId) {
        let mut fb = FunctionBuilder::new("sb");
        let sb = fb.block("sb");
        let e1 = fb.block("e1");
        let e2 = fb.block("e2");
        let e3 = fb.block("e3");
        for (k, e) in [e1, e2, e3].into_iter().enumerate() {
            fb.switch_to(e);
            let d = fb.movi(20 + k as i64);
            fb.store(d, Operand::Imm(1));
            fb.ret();
        }
        fb.switch_to(sb);
        let x = fb.reg();
        let v1 = fb.load(x);
        let t1 = fb.cmpp_un(CmpCond::Lt, v1.into(), Operand::Imm(0));
        fb.branch_if(t1, e1);
        let d1 = fb.movi(10);
        fb.store(d1, v1.into());
        let x2 = fb.add(x.into(), Operand::Imm(1));
        let v2 = fb.load(x2);
        let t2 = fb.cmpp_un(CmpCond::Lt, v2.into(), Operand::Imm(0));
        fb.branch_if(t2, e2);
        let d2 = fb.movi(11);
        fb.store(d2, v2.into());
        let x3 = fb.add(x.into(), Operand::Imm(2));
        let v3 = fb.load(x3);
        let t3 = fb.cmpp_un(CmpCond::Lt, v3.into(), Operand::Imm(0));
        fb.branch_if(t3, e3);
        let d3 = fb.movi(12);
        fb.store(d3, v3.into());
        fb.ret();
        (fb.finish(), x, sb)
    }

    #[test]
    fn converts_all_branches() {
        let (mut f, _x, sb) = plain_superblock();
        let n = frp_convert(&mut f);
        assert_eq!(n, 3);
        epic_ir::verify(&f).unwrap();
        // Every op after the first branch is now guarded.
        let ops = &f.block(sb).ops;
        let first_branch = ops.iter().position(|o| o.opcode == Opcode::Branch).unwrap();
        for op in &ops[first_branch + 1..] {
            if op.opcode == Opcode::Ret {
                continue;
            }
            assert!(op.guard.is_some(), "op {op} should be guarded");
        }
    }

    #[test]
    fn conversion_preserves_semantics() {
        let (f, x, _sb) = plain_superblock();
        let mut g = f.clone();
        frp_convert(&mut g);
        for image in [
            vec![1, 2, 3],
            vec![-1, 2, 3],
            vec![1, -2, 3],
            vec![1, 2, -3],
            vec![-1, -2, -3],
        ] {
            let input = Input::new().memory_size(32).with_memory(0, &image).with_reg(x, 0);
            diff_test(&f, &g, &input).unwrap();
        }
    }

    #[test]
    fn branch_frps_become_disjoint() {
        let (mut f, _x, sb) = plain_superblock();
        frp_convert(&mut f);
        let ops = &f.block(sb).ops;
        let mut facts = PredFacts::compute(ops);
        let branches: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.opcode == Opcode::Branch)
            .map(|(i, _)| i)
            .collect();
        for (a, &i) in branches.iter().enumerate() {
            for &j in &branches[a + 1..] {
                assert!(facts.guards_disjoint(i, j));
            }
        }
    }

    #[test]
    fn already_guarded_ops_are_untouched() {
        let (mut f, _x, sb) = plain_superblock();
        // Pre-guard one op (simulating prior if-conversion).
        let pre = f.new_pred();
        let idx = f.block(sb).ops.len() - 2; // the final store
        f.block_mut(sb).ops[idx].guard = Some(pre);
        frp_convert(&mut f);
        assert_eq!(f.block(sb).ops[idx].guard, Some(pre));
    }

    #[test]
    fn entry_defined_guard_stops_chain() {
        // A branch guarded by a region-entry predicate cannot be converted.
        let mut fb = FunctionBuilder::new("entry_guard");
        let sb = fb.block("sb");
        let out = fb.block("out");
        fb.switch_to(out);
        fb.ret();
        fb.switch_to(sb);
        let p = fb.pred();
        fb.branch_if(p, out);
        fb.movi(1);
        fb.ret();
        let mut f = fb.finish();
        assert_eq!(frp_convert(&mut f), 0);
        // The op after the unconverted branch must stay unguarded.
        let ops = &f.block(sb).ops;
        let mov = ops.iter().find(|o| o.opcode == Opcode::Mov).unwrap();
        assert_eq!(mov.guard, None);
    }
}
