//! Superblock loop unrolling with register renaming.
//!
//! Unrolling a loop whose body is one superblock produces exactly the shape
//! of the paper's Figure 6(b): intermediate copies of a conditional
//! back-edge branch are replaced by *exit* branches with inverted compare
//! conditions, and per-iteration values are *renamed* into fresh registers
//! (`r31`/`r32`/`r33` in the paper's strcpy) so that consecutive iterations
//! carry no false dependences — which is what lets predicate speculation
//! and the ICBM separability test see the unrolled compare chain as
//! independent.
//!
//! Registers and predicates that are live at the loop's exit targets keep
//! their architectural names in every copy (renaming them would leave exit
//! paths reading stale values); everything else gets a fresh name per copy,
//! with the final copy writing back to the original names so the back edge
//! re-enters the loop in a consistent state.

use std::collections::{HashMap, HashSet};

use epic_analysis::GlobalLiveness;
use epic_ir::{
    BlockId, CmpCond, Dest, Function, Op, Opcode, Operand, PredAction, PredReg, Reg,
};

/// Carries the per-copy renaming state.
struct Renamer {
    reg_map: HashMap<Reg, Reg>,
    pred_map: HashMap<PredReg, PredReg>,
    protected_regs: HashSet<Reg>,
    protected_preds: HashSet<PredReg>,
}

impl Renamer {
    fn new(func: &Function, head: BlockId, live: &GlobalLiveness) -> Renamer {
        // Values live at any exit target (or the natural fall-through exit)
        // must stay in their architectural registers. Partially-written
        // destinations (guarded register defs, wired or guarded predicate
        // writes) cannot be renamed either: under a false guard the
        // original keeps its previous value, which a fresh name would not.
        let mut protected_regs: HashSet<Reg> = HashSet::new();
        let mut protected_preds: HashSet<PredReg> = HashSet::new();
        for op in &func.block(head).ops {
            let guarded = op.guard.is_some();
            for d in &op.dests {
                match *d {
                    Dest::Reg(r) if guarded => {
                        protected_regs.insert(r);
                    }
                    Dest::Pred(pr, a) => {
                        let partial = a.kind != epic_ir::PredActionKind::Uncond
                            || (guarded && !matches!(op.opcode, Opcode::Cmpp(_)));
                        if partial {
                            protected_preds.insert(pr);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut absorb = |b: BlockId| {
            if let Some(s) = live.live_in_regs.get(&b) {
                protected_regs.extend(s.iter().copied());
            }
            if let Some(s) = live.live_in_preds.get(&b) {
                protected_preds.extend(s.iter().copied());
            }
        };
        for (_, br) in func.block(head).branches() {
            if let Some(t) = br.branch_target() {
                if t != head {
                    absorb(t);
                }
            }
        }
        if !func.block(head).ends_with_unconditional_exit() {
            if let Some(ft) = func.fallthrough_of(head) {
                absorb(ft);
            }
        }
        Renamer {
            reg_map: HashMap::new(),
            pred_map: HashMap::new(),
            protected_regs,
            protected_preds,
        }
    }

    fn use_reg(&self, r: Reg) -> Reg {
        self.reg_map.get(&r).copied().unwrap_or(r)
    }

    fn use_pred(&self, p: PredReg) -> PredReg {
        self.pred_map.get(&p).copied().unwrap_or(p)
    }

    /// Rewrites one cloned op in place: uses through the current map, then
    /// destinations renamed (fresh in intermediate copies, original names in
    /// the final copy).
    fn apply(&mut self, func: &mut Function, op: &mut Op, final_copy: bool) {
        for s in &mut op.srcs {
            match *s {
                Operand::Reg(r) => *s = Operand::Reg(self.use_reg(r)),
                Operand::Pred(p) => *s = Operand::Pred(self.use_pred(p)),
                _ => {}
            }
        }
        if let Some(g) = op.guard {
            op.guard = Some(self.use_pred(g));
        }
        for d in &mut op.dests {
            match *d {
                Dest::Reg(r) => {
                    let new = if final_copy || self.protected_regs.contains(&r) {
                        r
                    } else {
                        func.new_reg()
                    };
                    self.reg_map.insert(r, new);
                    *d = Dest::Reg(new);
                }
                Dest::Pred(p, a) => {
                    let new = if final_copy || self.protected_preds.contains(&p) {
                        p
                    } else {
                        func.new_pred()
                    };
                    self.pred_map.insert(p, new);
                    *d = Dest::Pred(new, a);
                }
            }
        }
    }
}

/// Unrolls the self-loop at `head` by `factor` (total copies of the body).
///
/// Two loop forms are handled:
///
/// * **bottom-test** — the block ends with a conditional back-edge branch
///   whose guard is computed by a unique `cmpp` inside the block:
///   intermediate copies replace the back edge with an inverted-condition
///   exit branch;
/// * **top-test** — the block ends with an unconditional back edge and
///   exits from within the body: intermediate copies simply drop the back
///   edge.
///
/// Returns `true` when the loop was unrolled; `false` when the block does
/// not match either pattern.
pub fn unroll_loop(func: &mut Function, head: BlockId, factor: u32) -> bool {
    if factor < 2 {
        return true;
    }
    let Some(exit_target) = func.fallthrough_of(head) else { return false };
    let ops = func.block(head).ops.clone();
    let Some(back) = ops.last() else { return false };
    if back.opcode != Opcode::Branch || back.branch_target() != Some(head) {
        return false;
    }
    let live = GlobalLiveness::compute(func);
    match back.guard {
        None => unroll_top_test(func, head, factor, &ops, &live),
        Some(guard) => unroll_bottom_test(func, head, factor, &ops, guard, exit_target, &live),
    }
}

fn unroll_bottom_test(
    func: &mut Function,
    head: BlockId,
    factor: u32,
    ops: &[Op],
    guard: PredReg,
    exit_target: BlockId,
    live: &GlobalLiveness,
) -> bool {
    // Find the unique defining cmpp of the back-edge guard, with an
    // unconditional action.
    let mut def: Option<(usize, CmpCond, PredAction)> = None;
    for (i, op) in ops.iter().enumerate() {
        for d in &op.dests {
            if let Dest::Pred(p, action) = *d {
                if p == guard {
                    match (op.opcode, def) {
                        (Opcode::Cmpp(c), None)
                            if action.kind == epic_ir::PredActionKind::Uncond =>
                        {
                            def = Some((i, c, action))
                        }
                        _ => return false, // multiple defs or non-cmpp def
                    }
                }
            }
        }
    }
    let Some((def_idx, cond, action)) = def else { return false };

    let mut ren = Renamer::new(func, head, live);
    let mut new_ops: Vec<Op> = Vec::with_capacity(ops.len() * factor as usize);
    for copy in 0..factor {
        let last_copy = copy == factor - 1;
        let exit_pred = if last_copy { None } else { Some(func.new_pred()) };
        for (i, op) in ops.iter().enumerate() {
            // Drop the back-edge pbr in intermediate copies.
            if !last_copy && op.opcode == Opcode::Pbr && op.branch_target() == Some(head) {
                continue;
            }
            if !last_copy && i == ops.len() - 1 {
                // The back-edge branch becomes an exit branch guarded by
                // the inverted condition.
                let btr = func.new_reg();
                new_ops.push(Op {
                    id: func.new_op_id(),
                    opcode: Opcode::Pbr,
                    dests: vec![Dest::Reg(btr)],
                    srcs: vec![Operand::Label(exit_target)],
                    guard: None,
                });
                new_ops.push(Op {
                    id: func.new_op_id(),
                    opcode: Opcode::Branch,
                    dests: vec![],
                    srcs: vec![Operand::Reg(btr), Operand::Label(exit_target)],
                    guard: exit_pred,
                });
                continue;
            }
            let mut cloned = func.clone_op(op);
            ren.apply(func, &mut cloned, last_copy);
            let cloned_srcs = cloned.srcs.clone();
            let cloned_guard = cloned.guard;
            new_ops.push(cloned);
            if !last_copy && i == def_idx {
                // Inverted compare right after the defining cmpp, observing
                // the same (renamed) sources.
                let inv_cond = match action.sense {
                    epic_ir::PredSense::Normal => cond.invert(),
                    epic_ir::PredSense::Complement => cond,
                };
                new_ops.push(Op {
                    id: func.new_op_id(),
                    opcode: Opcode::Cmpp(inv_cond),
                    dests: vec![Dest::Pred(exit_pred.expect("intermediate"), PredAction::UN)],
                    srcs: cloned_srcs,
                    guard: cloned_guard,
                });
            }
        }
    }
    func.block_mut(head).ops = new_ops;
    true
}

fn unroll_top_test(
    func: &mut Function,
    head: BlockId,
    factor: u32,
    ops: &[Op],
    live: &GlobalLiveness,
) -> bool {
    // The body must contain at least one conditional exit, otherwise the
    // loop is infinite and unrolling is pointless.
    if !ops.iter().any(|o| o.opcode == Opcode::Branch && o.guard.is_some()) {
        return false;
    }
    let mut ren = Renamer::new(func, head, live);
    let mut new_ops: Vec<Op> = Vec::with_capacity(ops.len() * factor as usize);
    for copy in 0..factor {
        let last_copy = copy == factor - 1;
        for (i, op) in ops.iter().enumerate() {
            let is_back_pbr = op.opcode == Opcode::Pbr && op.branch_target() == Some(head);
            let is_back_branch = i == ops.len() - 1;
            if !last_copy && (is_back_pbr || is_back_branch) {
                continue;
            }
            let mut cloned = func.clone_op(op);
            ren.apply(func, &mut cloned, last_copy);
            new_ops.push(cloned);
        }
    }
    func.block_mut(head).ops = new_ops;
    true
}

/// Unrolls every hot self-loop superblock in `func` by `factor`.
///
/// A block qualifies when its entry count is at least `min_count` and it
/// matches the [`unroll_loop`] pattern. Returns the number of loops
/// unrolled.
pub fn unroll_hot_loops(
    func: &mut Function,
    profile: &epic_ir::Profile,
    factor: u32,
    min_count: u64,
) -> usize {
    let candidates: Vec<BlockId> = func
        .layout
        .iter()
        .copied()
        .filter(|&b| profile.entry_count(b) >= min_count)
        .collect();
    let mut n = 0;
    for b in candidates {
        if unroll_loop(func, b, factor) && factor >= 2 {
            // unroll_loop returns true for factor<2 too; only count real work
            if func.block(b).branch_count() >= factor as usize {
                crate::flatten_induction(func, b);
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::FunctionBuilder;
    use epic_interp::{diff_test, run, Input};

    /// strcpy-style loop: copy words from src (reg a) to dst (reg b2)
    /// until a zero terminator.
    fn strcpy_loop() -> (Function, epic_ir::Reg, epic_ir::Reg, BlockId) {
        let mut fb = FunctionBuilder::new("strcpy");
        let loop_ = fb.block("loop");
        let exit = fb.block("exit");
        fb.switch_to(loop_);
        let a = fb.reg();
        let d = fb.reg();
        let v = fb.load(a);
        fb.store(d, v.into());
        let a2 = fb.add(a.into(), Operand::Imm(1));
        fb.mov_to(a, a2.into());
        let d2 = fb.add(d.into(), Operand::Imm(1));
        fb.mov_to(d, d2.into());
        let (cont, _stop) = fb.cmpp_un_uc(CmpCond::Ne, v.into(), Operand::Imm(0));
        fb.branch_if(cont, loop_);
        fb.switch_to(exit);
        fb.ret();
        (fb.finish(), a, d, loop_)
    }

    fn strcpy_input(a: epic_ir::Reg, d: epic_ir::Reg) -> Input {
        Input::new()
            .memory_size(64)
            .with_memory(0, &[7, 7, 7, 5, 3, 2, 1, 0])
            .with_reg(a, 0)
            .with_reg(d, 32)
    }

    #[test]
    fn unroll_preserves_semantics() {
        for factor in [2u32, 4, 8] {
            let (f, a, d, head) = strcpy_loop();
            let mut u = f.clone();
            assert!(unroll_loop(&mut u, head, factor), "factor {factor}");
            epic_ir::verify(&u).unwrap();
            diff_test(&f, &u, &strcpy_input(a, d)).unwrap();
            // Exactly `factor` branches in the unrolled body.
            assert_eq!(u.block(head).branch_count(), factor as usize, "\n{u}");
        }
    }

    #[test]
    fn unrolled_loop_executes_fewer_branch_fetches_per_element() {
        let (f, a, d, head) = strcpy_loop();
        let mut u = f.clone();
        unroll_loop(&mut u, head, 4);
        let base = run(&f, &strcpy_input(a, d)).unwrap();
        let unrolled = run(&u, &strcpy_input(a, d)).unwrap();
        assert_eq!(
            base.memory, unrolled.memory,
            "same result"
        );
        // Unrolling reduces back-edge branch executions.
        assert!(unrolled.profile.entry_count(head) < base.profile.entry_count(head));
    }

    #[test]
    fn factor_one_is_identity() {
        let (f, _a, _d, head) = strcpy_loop();
        let mut u = f.clone();
        assert!(unroll_loop(&mut u, head, 1));
        assert_eq!(u.block(head).ops.len(), f.block(head).ops.len());
    }

    #[test]
    fn non_loop_is_rejected() {
        let mut fb = FunctionBuilder::new("nl");
        let e = fb.block("e");
        fb.switch_to(e);
        fb.ret();
        let mut f = fb.finish();
        assert!(!unroll_loop(&mut f, e, 4));
    }

    #[test]
    fn unroll_hot_loops_uses_profile() {
        let (f, a, d, head) = strcpy_loop();
        let profile = run(&f, &strcpy_input(a, d)).unwrap().profile;
        let mut u = f.clone();
        let n = unroll_hot_loops(&mut u, &profile, 4, 1);
        assert_eq!(n, 1);
        diff_test(&f, &u, &strcpy_input(a, d)).unwrap();
        // With a sky-high threshold nothing unrolls.
        let mut u2 = f.clone();
        assert_eq!(unroll_hot_loops(&mut u2, &profile, 4, u64::MAX), 0);
        assert_eq!(u2.block(head).ops.len(), f.block(head).ops.len());
    }
}
