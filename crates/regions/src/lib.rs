//! # epic-regions
//!
//! Profile-driven region formation for the Control CPR pipeline: the
//! compiler stages that produce the superblocks the paper's baseline is
//! built from ([H+93]) and the FRP-converted superblocks that are the
//! preferred input of the ICBM schema (paper §4.1, Figure 1, Figure 6).
//!
//! Passes:
//!
//! * [`form_superblocks`] — profile-driven trace selection with tail
//!   duplication, merging hot fall-through chains into single-entry,
//!   multi-exit superblocks (one IR block each).
//! * [`unroll_hot_loops`] / [`unroll_loop`] — superblock loop unrolling with
//!   register renaming and compare-condition inversion for the intermediate
//!   back-edge branches.
//! * [`flatten_induction`] — rewrites unrolled pointer-advance chains into
//!   flat base+offset address computation (together these produce exactly
//!   the shape of the paper's Figure 6(b)).
//! * [`frp_convert`] — FRP conversion: rewrites a superblock so every
//!   operation is guarded by its block's fully-resolved predicate and every
//!   branch by its branch FRP, turning branch dependences into data
//!   dependences (Figure 1(b), Figure 6(c)).
//! * [`if_convert`] — traditional if-conversion of triangle hammocks, the
//!   enhancement the paper's §7 names as the way to extend control CPR past
//!   unbiased branches.
//! * [`meld`] — instruction melding of full diamonds: both sides of a short
//!   branch/rejoin region are collapsed into straight-line code under
//!   complementary predicates, the branch-elimination alternative to ICBM.
//! * [`remove_unreachable`] — removes blocks made unreachable by the above.

mod frp;
mod ifconv;
mod induction;
mod meld;
mod superblock;
mod unroll;

pub use frp::frp_convert;
pub use ifconv::{if_convert, IfConvertConfig};
pub use meld::{meld, MeldConfig};
pub use induction::flatten_induction;
pub use superblock::{form_superblocks, TraceConfig};
pub use unroll::{unroll_hot_loops, unroll_loop};

use std::collections::HashSet;

use epic_ir::{BlockId, Function};

/// Removes blocks that can no longer be reached from the entry.
///
/// Returns the number of blocks removed. A block is reachable when it is the
/// entry, a branch target of a reachable block, or the layout successor of a
/// reachable block that can fall through.
pub fn remove_unreachable(func: &mut Function) -> usize {
    let mut reachable: HashSet<BlockId> = HashSet::new();
    let mut work = vec![func.entry()];
    while let Some(b) = work.pop() {
        if !reachable.insert(b) {
            continue;
        }
        for s in func.successors(b) {
            work.push(s);
        }
    }
    let before = func.layout.len();
    func.layout.retain(|b| reachable.contains(b));
    before - func.layout.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::FunctionBuilder;

    #[test]
    fn removes_unreachable_blocks() {
        let mut b = FunctionBuilder::new("u");
        let e = b.block("entry");
        let dead = b.block("dead");
        let tail = b.block("tail");
        b.switch_to(e);
        b.jump(tail);
        b.switch_to(dead);
        b.ret();
        b.switch_to(tail);
        b.ret();
        let mut f = b.finish();
        assert_eq!(remove_unreachable(&mut f), 1);
        assert_eq!(f.layout, vec![e, tail]);
        let _ = dead;
        epic_ir::verify(&f).unwrap();
    }

    #[test]
    fn keeps_fallthrough_reachable_blocks() {
        let mut b = FunctionBuilder::new("k");
        let e = b.block("entry");
        let ft = b.block("ft");
        b.switch_to(e);
        b.movi(1); // falls through into ft
        b.switch_to(ft);
        b.ret();
        let mut f = b.finish();
        assert_eq!(remove_unreachable(&mut f), 0);
        assert_eq!(f.layout, vec![e, ft]);
    }
}
