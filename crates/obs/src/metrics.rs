//! The process-wide metrics registry: named counters, gauges and
//! log-scale latency histograms.
//!
//! All instruments are cheap enough to update from hot paths: counters
//! stripe their increments over cache-line-padded atomic shards (writers
//! on different threads rarely contend), gauges are a single atomic, and
//! histograms bucket values on a log-linear scale (16 sub-buckets per
//! octave, ≤ ~6% relative error) so recording is two relaxed atomic adds.
//!
//! [`MetricsRegistry::global`] is the process-wide instance every
//! subsystem (pipeline, compile cache, batch server) reports into.
//! [`MetricsRegistry::snapshot`] freezes the current values for rendering
//! as hand-rolled JSON (the same style as `crates/bench/src/json.rs`
//! produces) or Prometheus text exposition.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Shards per counter. Power of two; eight 64-byte lines per counter is
/// enough that the worker-pool sizes we run at rarely collide.
const SHARDS: usize = 8;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Index of the calling thread's counter shard (a small per-thread id,
/// assigned on first use, reduced mod [`SHARDS`]).
fn shard_index() -> usize {
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize =
            NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonically increasing counter, striped over atomic shards.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A free-standing counter (registry-less; tests and local use).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total over all shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// An instantaneous signed value (e.g. currently-detached worker threads).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A free-standing gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative) and returns the new value.
    pub fn add(&self, d: i64) -> i64 {
        self.0.fetch_add(d, Ordering::Relaxed) + d
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per octave. Values below [`LINEAR_MAX`] are exact; above,
/// each power-of-two range splits into this many log-linear sub-buckets,
/// bounding the relative quantile error at `1/SUB_BUCKETS` (6.25%).
const SUB_BUCKETS: u64 = 16;
/// Values in `0..LINEAR_MAX` get their own exact bucket.
const LINEAR_MAX: u64 = 16;
/// Total bucket count: 16 exact + (63 - 3) octaves × 16 sub-buckets.
const BUCKETS: usize = (LINEAR_MAX + (63 - 3) * SUB_BUCKETS) as usize;

fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // >= 4
    let sub = (v >> (exp - 4)) & (SUB_BUCKETS - 1);
    (LINEAR_MAX + (exp - 4) * SUB_BUCKETS + sub) as usize
}

/// The lowest value mapping to `bucket` (its representative on readout;
/// quantiles are reported as bucket lower bounds, biasing low by at most
/// one sub-bucket width).
fn bucket_floor(bucket: usize) -> u64 {
    let b = bucket as u64;
    if b < LINEAR_MAX {
        return b;
    }
    let rel = b - LINEAR_MAX;
    let exp = rel / SUB_BUCKETS + 4;
    let sub = rel % SUB_BUCKETS;
    (1u64 << exp).wrapping_add(sub << (exp - 4))
}

/// A log-scale histogram of non-negative integer samples (latencies are
/// recorded in nanoseconds).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A free-standing histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket lower bound: the
    /// smallest recorded bucket whose cumulative count reaches `q × count`.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Freezes the current distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// A frozen histogram summary (nanosecond units for latency histograms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Median (bucket lower bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile (the serve-layer tail the load generator gates).
    pub p999: u64,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric's frozen value inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge value.
    Gauge(i64),
    /// A histogram summary.
    Histogram(HistogramSnapshot),
}

/// A consistent-enough point-in-time copy of every registered metric
/// (individual values are read without a global lock; each value is
/// internally consistent).
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` pairs sorted by name.
    pub metrics: Vec<(String, MetricValue)>,
}

/// A registry of named metrics. Handles returned by
/// [`counter`](MetricsRegistry::counter) & friends are `Arc`s — resolve
/// once, update forever without touching the registry lock again.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<HashMap<String, Metric>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry (tests; production code uses
    /// [`MetricsRegistry::global`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} is registered with a different type"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} is registered with a different type"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is registered with a different type"),
        }
    }

    /// Freezes every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        let mut metrics: Vec<(String, MetricValue)> = inner
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), v)
            })
            .collect();
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { metrics }
    }
}

/// Renders a metric name carrying label pairs in the Prometheus style:
/// `metric_name("pipeline_stage_ns", &[("stage", "icbm")])` →
/// `pipeline_stage_ns{stage="icbm"}`. The rendered string is the registry
/// key, so one logical metric family fans out into one entry per label
/// combination.
pub fn metric_name(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{base}{{{}}}", body.join(","))
}

/// Escapes `s` as a JSON string literal (quotes included). Duplicated from
/// `epic-bench` by design: this crate is dependency-free so every other
/// crate can report into it.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Snapshot {
    /// Renders the snapshot as one JSON object keyed by metric name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            match v {
                MetricValue::Counter(n) => {
                    out.push_str(&format!("{{\"type\":\"counter\",\"value\":{n}}}"));
                }
                MetricValue::Gauge(n) => {
                    out.push_str(&format!("{{\"type\":\"gauge\",\"value\":{n}}}"));
                }
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\
                     \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                    h.count, h.sum, h.p50, h.p90, h.p99, h.p999
                )),
            }
        }
        out.push('}');
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Histograms are exposed as summaries (`{quantile="…"}` series plus
    /// `_sum` and `_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base: Option<String> = None;
        for (name, v) in &self.metrics {
            let (base, labels) = match name.find('{') {
                Some(i) => (&name[..i], &name[i..]),
                None => (name.as_str(), ""),
            };
            let kind = match v {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            if last_base.as_deref() != Some(base) {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_base = Some(base.to_string());
            }
            match v {
                MetricValue::Counter(n) => out.push_str(&format!("{base}{labels} {n}\n")),
                MetricValue::Gauge(n) => out.push_str(&format!("{base}{labels} {n}\n")),
                MetricValue::Histogram(h) => {
                    for (q, val) in
                        [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99), ("0.999", h.p999)]
                    {
                        let series = if labels.is_empty() {
                            format!("{base}{{quantile=\"{q}\"}}")
                        } else {
                            let inner = &labels[1..labels.len() - 1];
                            format!("{base}{{{inner},quantile=\"{q}\"}}")
                        };
                        out.push_str(&format!("{series} {val}\n"));
                    }
                    out.push_str(&format!("{base}_sum{labels} {}\n", h.sum));
                    out.push_str(&format!("{base}_count{labels} {}\n", h.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads_exactly() {
        // N threads × M increments must sum exactly — no lost updates
        // across the shards.
        let c = Arc::new(Counter::new());
        let (n, m) = (8, 10_000);
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..m {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), n * m);
    }

    #[test]
    fn gauge_tracks_adds_and_sets() {
        let g = Gauge::new();
        assert_eq!(g.value(), 0);
        assert_eq!(g.add(5), 5);
        assert_eq!(g.add(-2), 3);
        g.set(-7);
        assert_eq!(g.value(), -7);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_tight() {
        // Every value maps into a bucket whose floor is ≤ the value and
        // whose next bucket's floor is > it; relative error ≤ 1/16.
        for v in (0..4096u64).chain([1 << 20, (1 << 40) + 12345, u64::MAX / 2]) {
            let b = bucket_of(v);
            assert!(bucket_floor(b) <= v, "floor({b}) > {v}");
            if b + 1 < BUCKETS {
                let next = bucket_floor(b + 1);
                assert!(next > v, "bucket {b} too wide for {v}");
                // Log-linear resolution bound.
                if v >= LINEAR_MAX {
                    assert!((next - bucket_floor(b)) as f64 <= v as f64 / 8.0 + 1.0);
                }
            }
        }
    }

    #[test]
    fn histogram_quantiles_on_known_distributions() {
        // Uniform 1..=1000: p50 ≈ 500, p90 ≈ 900, p99 ≈ 990 — within the
        // documented 1/16 relative bucket error (reported as lower bound).
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        for (q, expect) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile(q) as f64;
            assert!(
                got <= expect && got >= expect * (1.0 - 1.0 / 16.0) - 1.0,
                "q{q}: got {got}, want ~{expect}"
            );
        }
        // A point mass lands in its own bucket: the quantile's bucket
        // floor is exact for exact-bucket values and within 1/16 above.
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe(12); // below LINEAR_MAX → exact bucket
        }
        assert_eq!(h.quantile(0.01), 12);
        assert_eq!(h.quantile(0.5), 12);
        assert_eq!(h.quantile(1.0), 12);
        // Bimodal: half at 10, half at 1_000_000.
        let h = Histogram::new();
        for _ in 0..500 {
            h.observe(10);
            h.observe(1_000_000);
        }
        assert_eq!(h.quantile(0.25), 10);
        let p99 = h.quantile(0.99) as f64;
        assert!((937_500.0..=1_000_000.0).contains(&p99), "{p99}");
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn registry_reuses_handles_and_snapshots_sorted() {
        let r = MetricsRegistry::new();
        let a = r.counter("b_second");
        let b = r.counter("b_second");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(3);
        r.gauge("a_first").set(-1);
        r.histogram("c_third").observe(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a_first", "b_second", "c_third"]);
        assert_eq!(snap.metrics[1].1, MetricValue::Counter(3));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn metric_names_render_labels() {
        assert_eq!(metric_name("hits", &[]), "hits");
        assert_eq!(
            metric_name("stage_ns", &[("stage", "icbm"), ("mode", "hot")]),
            "stage_ns{stage=\"icbm\",mode=\"hot\"}"
        );
    }

    #[test]
    fn snapshot_renders_json_and_prometheus() {
        let r = MetricsRegistry::new();
        r.counter("cache_hits_total").add(7);
        r.gauge("detached_workers").set(2);
        let h = r.histogram(&metric_name("stage_ns", &[("stage", "icbm")]));
        h.observe(1000);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"cache_hits_total\":{\"type\":\"counter\",\"value\":7}"));
        assert!(json.contains("\"detached_workers\":{\"type\":\"gauge\",\"value\":2}"));
        assert!(json.contains("\"count\":1"));
        let prom = r.snapshot().to_prometheus();
        assert!(prom.contains("# TYPE cache_hits_total counter"));
        assert!(prom.contains("cache_hits_total 7"));
        assert!(prom.contains("# TYPE stage_ns summary"));
        assert!(prom.contains("stage_ns{stage=\"icbm\",quantile=\"0.5\"}"));
        assert!(prom.contains("stage_ns_count{stage=\"icbm\"} 1"));
    }
}
