//! # epic-obs
//!
//! The live observability layer: a process-wide [`MetricsRegistry`] of
//! named counters, gauges and log-scale latency histograms, plus
//! span-based request tracing exportable as Chrome `trace_event` JSON.
//!
//! The crate is deliberately dependency-free so every other crate in the
//! workspace — pipeline, compile cache, ICBM core, batch server — can
//! report into one registry and one tracer:
//!
//! * the bench pipeline feeds every stage timing into
//!   `pipeline_stage_ns{stage="…"}` histograms and emits one trace span
//!   per stage,
//! * the compile cache mirrors its hit/miss/eviction/disk counters into
//!   `compile_cache_*_total` counters,
//! * ICBM opens sub-spans for its speculate/restructure/motion/dce phases,
//! * the batch server tallies `serve_*` counters, keeps the
//!   `serve_detached_workers` gauge live, and answers `{"op":"metrics"}`
//!   requests with a registry snapshot.
//!
//! Metric updates are relaxed atomics (counters are sharded across cache
//! lines); tracing costs one atomic load per span while disabled. See
//! [`metrics`] and [`trace`] for the two halves.

pub mod metrics;
pub mod trace;

pub use metrics::{
    metric_name, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry,
    Snapshot,
};
pub use trace::{
    current_trace_id, next_trace_id, Span, TraceEvent, TraceIdGuard, Tracer,
};
