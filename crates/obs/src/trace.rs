//! Span-based request tracing with Chrome `trace_event` export.
//!
//! A [`Span`] is an RAII guard opened around a unit of work (a pipeline
//! stage, a cache probe, a serve request). When the global [`Tracer`] is
//! enabled, dropping the span records one *complete* event (`"ph":"X"`)
//! with microsecond timestamps relative to the tracer's epoch; when it is
//! disabled — the default — entering a span is a single relaxed atomic
//! load and records nothing, so instrumented code stays on its fast path.
//!
//! Every event carries the calling thread's *trace id* (see
//! [`TraceIdGuard`]): the batch-compile server assigns one id per request
//! and propagates it into detached worker threads, so all spans of one
//! request — across pipeline, cache and ICBM sub-phases — share an id and
//! can be grouped in the viewer.
//!
//! [`Tracer::export_chrome_json`] renders the collected events as a JSON
//! object loadable by `chrome://tracing` / Perfetto.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::metrics::json_string;

/// One recorded complete event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name (e.g. `"icbm"`, `"serve.request"`).
    pub name: String,
    /// Category (e.g. `"pipeline"`, `"cache"`, `"serve"`).
    pub cat: String,
    /// Start, microseconds since the tracer's epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small per-thread id (dense, assigned on first use).
    pub tid: u64,
    /// The thread's trace id at record time, if any.
    pub trace_id: Option<u64>,
    /// Extra `args` key/value pairs (rendered as strings).
    pub args: Vec<(String, String)>,
}

/// The process-wide trace collector.
pub struct Tracer {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
    epoch: Instant,
}

/// A dense id for the calling thread (Chrome traces want small integers).
fn thread_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

thread_local! {
    static CURRENT_TRACE_ID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// The calling thread's current trace id, if one is set.
pub fn current_trace_id() -> Option<u64> {
    CURRENT_TRACE_ID.with(Cell::get)
}

/// Allocates a fresh process-unique trace id (never zero).
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Sets the calling thread's trace id for the guard's lifetime, restoring
/// the previous id on drop. Spans recorded while the guard is live carry
/// the id.
pub struct TraceIdGuard {
    prev: Option<u64>,
}

impl TraceIdGuard {
    /// Installs `id` as the thread's current trace id.
    pub fn set(id: u64) -> TraceIdGuard {
        let prev = CURRENT_TRACE_ID.with(|c| c.replace(Some(id)));
        TraceIdGuard { prev }
    }
}

impl Drop for TraceIdGuard {
    fn drop(&mut self) {
        CURRENT_TRACE_ID.with(|c| c.set(self.prev));
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh, disabled tracer with its epoch at construction time.
    pub fn new() -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// The process-wide tracer.
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(Tracer::new)
    }

    /// Starts collecting events.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops collecting (already-recorded events are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// True when spans record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Records one complete event that started at `start` and ran for
    /// `dur`. A no-op unless enabled.
    pub fn record_complete(
        &self,
        name: &str,
        cat: &str,
        start: Instant,
        dur: Duration,
        args: &[(&str, &str)],
    ) {
        if !self.is_enabled() {
            return;
        }
        let ts_us = start.saturating_duration_since(self.epoch).as_micros() as u64;
        let event = TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ts_us,
            dur_us: dur.as_micros() as u64,
            tid: thread_tid(),
            trace_id: current_trace_id(),
            args: args.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        };
        self.events.lock().unwrap().push(event);
    }

    /// Takes every event recorded so far, leaving the collector empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// Events recorded so far (collector left intact).
    pub fn event_count(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Renders (and drains) the collected events as Chrome `trace_event`
    /// JSON: `{"displayTimeUnit":"ms","traceEvents":[{"ph":"X",...},...]}`.
    pub fn export_chrome_json(&self) -> String {
        let events = self.drain();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{}",
                json_string(&e.name),
                json_string(&e.cat),
                e.tid,
                e.ts_us,
                e.dur_us
            ));
            if e.trace_id.is_some() || !e.args.is_empty() {
                out.push_str(",\"args\":{");
                let mut first = true;
                if let Some(id) = e.trace_id {
                    out.push_str(&format!("\"trace_id\":\"{id:016x}\""));
                    first = false;
                }
                for (k, v) in &e.args {
                    if !first {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json_string(k), json_string(v)));
                    first = false;
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// An RAII span: measures from construction to drop and records a complete
/// event on the global tracer. When tracing is disabled at entry the span
/// is inert (no clock read, nothing recorded at drop).
pub struct Span {
    start: Option<Instant>,
    name: &'static str,
    cat: &'static str,
}

impl Span {
    /// Opens a span named `name` under category `cat`.
    pub fn enter(name: &'static str, cat: &'static str) -> Span {
        let start = Tracer::global().is_enabled().then(Instant::now);
        Span { start, name, cat }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            Tracer::global().record_complete(self.name, self.cat, start, start.elapsed(), &[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.record_complete("x", "c", Instant::now(), Duration::from_millis(1), &[]);
        assert_eq!(t.event_count(), 0);
    }

    #[test]
    fn events_record_and_export() {
        let t = Tracer::new();
        t.enable();
        let start = Instant::now();
        t.record_complete("icbm", "pipeline", start, Duration::from_micros(1500), &[
            ("workload", "strcpy"),
        ]);
        assert_eq!(t.event_count(), 1);
        let json = t.export_chrome_json();
        assert!(json.contains("\"traceEvents\":["), "{json}");
        assert!(json.contains("\"name\":\"icbm\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"dur\":1500"), "{json}");
        assert!(json.contains("\"workload\":\"strcpy\""), "{json}");
        // Export drains.
        assert_eq!(t.event_count(), 0);
    }

    #[test]
    fn trace_id_guard_nests_and_restores() {
        assert_eq!(current_trace_id(), None);
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        {
            let _g = TraceIdGuard::set(a);
            assert_eq!(current_trace_id(), Some(a));
            {
                let _h = TraceIdGuard::set(b);
                assert_eq!(current_trace_id(), Some(b));
            }
            assert_eq!(current_trace_id(), Some(a));
        }
        assert_eq!(current_trace_id(), None);
    }

    #[test]
    fn span_records_on_global_tracer_when_enabled() {
        // The global tracer is shared across tests; only assert on our own
        // marker event's presence.
        let t = Tracer::global();
        t.enable();
        let _id = TraceIdGuard::set(42);
        {
            let _s = Span::enter("span_records_on_global_tracer", "test");
        }
        t.disable();
        let events = t.drain();
        let mine: Vec<_> = events
            .iter()
            .filter(|e| e.name == "span_records_on_global_tracer")
            .collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].trace_id, Some(42));
        assert_eq!(mine[0].cat, "test");
    }
}
