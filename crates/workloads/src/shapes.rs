//! The ten program shapes and the 26 benchmark instantiations.
//!
//! Every shape follows the code idioms the paper's input superblocks have
//! (Figure 6(b)): branch-condition operands are computed into fresh
//! registers so predicate speculation can separate the compare chain;
//! loop-carried pointers are advanced into fresh registers and committed by
//! a separate move; inputs, tables, and outputs live in distinct alias
//! classes (the disambiguation IMPACT gets from its pointer analysis).
//!
//! Memory map (words): input A at `0`, input B / tables at [`TABLE_BASE`],
//! outputs at [`OUT_BASE`]; images are [`MEM_SIZE`] words.

use epic_interp::Input;
use epic_ir::{CmpCond, Function, FunctionBuilder, Operand, Reg};

use crate::data;
use crate::{Group, Workload};

/// Base address of the second input / table region (alias class 3).
pub const TABLE_BASE: i64 = 4096;
/// Base address of the output region (alias class 2).
pub const OUT_BASE: i64 = 12288;
/// Memory image size in words.
pub const MEM_SIZE: usize = 16384;

/// Alias class of the primary input region.
const CLASS_IN: u32 = 1;
/// Alias class of the output region.
const CLASS_OUT: u32 = 2;
/// Alias class of the table / secondary input region.
const CLASS_TABLE: u32 = 3;

fn base_input(text: &[i64]) -> Input {
    Input::new().memory_size(MEM_SIZE).with_memory(0, text)
}

/// strcpy: copy words until the 0 terminator (paper §6's running example).
pub fn strcpy() -> Workload {
    let mut fb = FunctionBuilder::new("strcpy");
    let loop_ = fb.block("loop");
    let exit = fb.block("exit");
    fb.switch_to(loop_);
    let src = fb.reg();
    let dst = fb.reg();
    fb.set_alias_class(Some(CLASS_IN));
    let v = fb.load(src);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(dst, v.into());
    fb.set_alias_class(None);
    let src2 = fb.add(src.into(), Operand::Imm(1));
    let dst2 = fb.add(dst.into(), Operand::Imm(1));
    fb.mov_to(src, src2.into());
    fb.mov_to(dst, dst2.into());
    let (cont, _stop) = fb.cmpp_un_uc(CmpCond::Ne, v.into(), Operand::Imm(0));
    fb.branch_if(cont, loop_);
    fb.switch_to(exit);
    fb.ret();
    let mut func = fb.finish();
    init_regs(&mut func, &[(src, 0), (dst, OUT_BASE)]);

    let mut rng = data::rng(101);
    let text = data::sentinel_string(&mut rng, 3000, 200);
    let short = data::sentinel_string(&mut rng, 7, 200);
    Workload {
        name: "strcpy",
        group: Group::Unix,
        func,
        training: base_input(&text),
        evaluation: vec![base_input(&short), base_input(&[0])],
        unroll: 8,
    }
}

/// cmp: compare two words streams until mismatch or terminator.
pub fn cmp() -> Workload {
    let mut fb = FunctionBuilder::new("cmp");
    let loop_ = fb.block("loop");
    let diff = fb.block("diff");
    let exit = fb.block("exit");
    fb.switch_to(loop_);
    let pa = fb.reg();
    let pb = fb.reg();
    let idx = fb.reg();
    fb.set_alias_class(Some(CLASS_IN));
    let va = fb.load(pa);
    fb.set_alias_class(Some(CLASS_TABLE));
    let vb = fb.load(pb);
    fb.set_alias_class(None);
    let (ne, eq) = fb.cmpp_un_uc(CmpCond::Ne, va.into(), vb.into());
    fb.branch_if(ne, diff);
    let pa2 = fb.add(pa.into(), Operand::Imm(1));
    let pb2 = fb.add(pb.into(), Operand::Imm(1));
    let idx2 = fb.add(idx.into(), Operand::Imm(1));
    fb.set_guard(Some(eq));
    fb.mov_to(pa, pa2.into());
    fb.mov_to(pb, pb2.into());
    fb.mov_to(idx, idx2.into());
    let (cont, _) = fb.cmpp_un_uc(CmpCond::Ne, va.into(), Operand::Imm(0));
    fb.branch_if(cont, loop_);
    fb.set_guard(None);
    // Equal streams: report -1.
    let d = fb.movi(OUT_BASE);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(d, Operand::Imm(-1));
    fb.set_alias_class(None);
    fb.jump(exit);
    fb.switch_to(diff);
    let d2 = fb.movi(OUT_BASE);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(d2, idx.into());
    fb.set_alias_class(None);
    fb.jump(exit);
    fb.switch_to(exit);
    fb.ret();
    let mut func = fb.finish();
    init_regs(&mut func, &[(pa, 0), (pb, TABLE_BASE), (idx, 0)]);

    let mut rng = data::rng(102);
    let a = data::sentinel_string(&mut rng, 3500, 50);
    let mut b = a.clone();
    // One mismatch near the end.
    let at = a.len() - 5;
    b[at] = a[at] + 1;
    let train = base_input(&a).with_memory(TABLE_BASE as usize, &b);
    let eval_equal = base_input(&a).with_memory(TABLE_BASE as usize, &a);
    let mut early = a.clone();
    early[1] += 3;
    let eval_early = base_input(&early).with_memory(TABLE_BASE as usize, &a);
    Workload {
        name: "cmp",
        group: Group::Unix,
        func,
        training: train,
        evaluation: vec![eval_equal, eval_early],
        unroll: 8,
    }
}

/// Parameters for the character-class chain shape (wc, cccp, eqn, tbl).
struct ClassChain {
    name: &'static str,
    group: Group,
    seed: u64,
    len: usize,
    /// Relative frequency of each class (class value = index + 1).
    weights: &'static [u32],
    /// Classes whose handling is a *side block* (rare); others are
    /// if-converted guarded register updates.
    side_classes: &'static [i64],
    /// Extra unguarded integer ops per iteration (operation mix).
    extra_ops: u32,
    /// Store a running value to the output region each iteration.
    store_per_iter: bool,
    unroll: u32,
}

fn class_chain(p: ClassChain) -> Workload {
    let nclasses = p.weights.len() as i64;
    let mut fb = FunctionBuilder::new(p.name);
    let loop_ = fb.block("loop");
    // One side block per rare class, plus the advance block and exit.
    let adv = fb.block("adv");
    let exit = fb.block("exit");
    let side_blocks: Vec<_> =
        p.side_classes.iter().map(|c| fb.block(format!("side{c}"))).collect();

    fb.switch_to(loop_);
    let ptr = fb.reg();
    let counters: Vec<Reg> = (0..nclasses).map(|_| fb.reg()).collect();
    let total = fb.reg();
    fb.set_alias_class(Some(CLASS_IN));
    let v = fb.load(ptr);
    fb.set_alias_class(None);
    let (z, _nz) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
    fb.branch_if(z, exit);
    let total2 = fb.add(total.into(), Operand::Imm(1));
    fb.mov_to(total, total2.into());
    for _ in 0..p.extra_ops {
        let t = fb.xor(v.into(), total.into());
        let _ = fb.and(t.into(), Operand::Imm(0xffff));
    }
    for class in 1..=nclasses {
        let is_side = p.side_classes.contains(&class);
        if is_side {
            let blk = side_blocks[p.side_classes.iter().position(|&c| c == class).unwrap()];
            let (hit, _miss) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(class));
            fb.branch_if(hit, blk);
        } else {
            // If-converted: guarded counter bump.
            let hit = fb.cmpp_un(CmpCond::Eq, v.into(), Operand::Imm(class));
            let c = counters[(class - 1) as usize];
            let c2 = fb.add(c.into(), Operand::Imm(1));
            fb.set_guard(Some(hit));
            fb.mov_to(c, c2.into());
            fb.set_guard(None);
        }
    }
    if p.store_per_iter {
        let out = fb.add(Operand::Imm(OUT_BASE + 8), total.into());
        let mix = fb.add(v.into(), total.into());
        fb.set_alias_class(Some(CLASS_OUT));
        fb.store(out, mix.into());
        fb.set_alias_class(None);
    }
    // Fall through into the advance block.
    fb.switch_to(adv);
    let ptr2 = fb.add(ptr.into(), Operand::Imm(1));
    fb.mov_to(ptr, ptr2.into());
    fb.jump(loop_);

    for (k, &blk) in side_blocks.iter().enumerate() {
        fb.switch_to(blk);
        let class = p.side_classes[k];
        let c = counters[(class - 1) as usize];
        let c2 = fb.add(c.into(), Operand::Imm(1));
        fb.mov_to(c, c2.into());
        // Rare classes do a little extra work (e.g. wc ends a word).
        let t = fb.mul(c.into(), Operand::Imm(3));
        let o = fb.movi(OUT_BASE + 64 + class);
        fb.set_alias_class(Some(CLASS_OUT));
        fb.store(o, t.into());
        fb.set_alias_class(None);
        fb.jump(adv);
    }

    fb.switch_to(exit);
    for (k, &c) in counters.iter().enumerate() {
        let o = fb.movi(OUT_BASE + k as i64);
        fb.set_alias_class(Some(CLASS_OUT));
        fb.store(o, c.into());
        fb.set_alias_class(None);
    }
    let o = fb.movi(OUT_BASE + nclasses);
    fb.store(o, total.into());
    fb.ret();

    let mut func = fb.finish();
    init_regs(&mut func, &[(ptr, 0), (total, 0)]);

    let mut rng = data::rng(p.seed);
    let text = data::classed_text(&mut rng, p.len, p.weights);
    let rare_heavy: Vec<u32> = p.weights.iter().rev().copied().collect();
    let text2 = data::classed_text(&mut rng, 64, &rare_heavy);
    Workload {
        name: p.name,
        group: p.group,
        func,
        training: base_input(&text),
        evaluation: vec![base_input(&text2), base_input(&[0])],
        unroll: p.unroll,
    }
}

/// wc: letters dominate; spaces and newlines are side blocks.
pub fn wc() -> Workload {
    class_chain(ClassChain {
        name: "wc",
        group: Group::Unix,
        seed: 103,
        len: 3000,
        weights: &[85, 12, 3],
        side_classes: &[3],
        extra_ops: 0,
        store_per_iter: false,
        unroll: 4,
    })
}

/// cccp: preprocessor-style scan, more classes, rare directives off-path.
pub fn cccp() -> Workload {
    class_chain(ClassChain {
        name: "cccp",
        group: Group::Unix,
        seed: 104,
        len: 2600,
        weights: &[70, 15, 9, 4, 2],
        side_classes: &[5],
        extra_ops: 1,
        store_per_iter: true,
        unroll: 4,
    })
}

/// eqn: math-typesetting token scan with per-token output.
pub fn eqn() -> Workload {
    class_chain(ClassChain {
        name: "eqn",
        group: Group::Unix,
        seed: 105,
        len: 2400,
        weights: &[60, 25, 10, 5],
        side_classes: &[4],
        extra_ops: 2,
        store_per_iter: true,
        unroll: 2,
    })
}

/// tbl: table formatter; flatter class distribution (less biased).
pub fn tbl() -> Workload {
    class_chain(ClassChain {
        name: "tbl",
        group: Group::Unix,
        seed: 106,
        len: 2200,
        weights: &[40, 30, 20, 10],
        side_classes: &[],
        extra_ops: 2,
        store_per_iter: true,
        unroll: 2,
    })
}

/// grep: scan for a rare first byte; verify the pattern on a hit.
pub fn grep() -> Workload {
    let mut fb = FunctionBuilder::new("grep");
    let loop_ = fb.block("loop");
    let adv = fb.block("adv");
    let exit = fb.block("exit");
    let verify = fb.block("verify");
    fb.switch_to(loop_);
    let ptr = fb.reg();
    let hits = fb.reg();
    fb.set_alias_class(Some(CLASS_IN));
    let v = fb.load(ptr);
    fb.set_alias_class(None);
    let (z, _) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
    fb.branch_if(z, exit);
    // First pattern byte is 7 (rare in the text).
    let (hit, _) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(7));
    fb.branch_if(hit, verify);
    fb.switch_to(adv);
    let ptr2 = fb.add(ptr.into(), Operand::Imm(1));
    fb.mov_to(ptr, ptr2.into());
    fb.jump(loop_);
    // Verify the next two pattern bytes (off the hot path).
    fb.switch_to(verify);
    let a1 = fb.add(ptr.into(), Operand::Imm(1));
    fb.set_alias_class(Some(CLASS_IN));
    let v1 = fb.load(a1);
    fb.set_alias_class(None);
    let m1 = fb.cmpp_un(CmpCond::Eq, v1.into(), Operand::Imm(8));
    let a2 = fb.add(ptr.into(), Operand::Imm(2));
    fb.set_alias_class(Some(CLASS_IN));
    let v2 = fb.load(a2);
    fb.set_alias_class(None);
    let hits2 = fb.add(hits.into(), Operand::Imm(1));
    fb.set_guard(Some(m1));
    let m2 = fb.cmpp_un(CmpCond::Eq, v2.into(), Operand::Imm(9));
    fb.set_guard(Some(m2));
    fb.mov_to(hits, hits2.into());
    fb.set_guard(None);
    fb.jump(adv);
    fb.switch_to(exit);
    let o = fb.movi(OUT_BASE);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(o, hits.into());
    fb.ret();
    let mut func = fb.finish();
    init_regs(&mut func, &[(ptr, 0), (hits, 0)]);

    let mut rng = data::rng(107);
    // Byte 7 appears rarely (~1% of the stream).
    let text = data::biased_stream(&mut rng, 3200, 1, 60, 40);
    let dense: Vec<i64> = std::iter::repeat_n([7i64, 8, 9], 40).flatten().chain([0]).collect();
    Workload {
        name: "grep",
        group: Group::Unix,
        func,
        training: base_input(&text),
        evaluation: vec![base_input(&dense), base_input(&[0])],
        unroll: 6,
    }
}

/// lex: DFA scanner — table-driven state transition with rare accept/error
/// states.
pub fn lex() -> Workload {
    let mut fb = FunctionBuilder::new("lex");
    let loop_ = fb.block("loop");
    let adv = fb.block("adv");
    let exit = fb.block("exit");
    let accept = fb.block("accept");
    fb.switch_to(loop_);
    let ptr = fb.reg();
    let state = fb.reg();
    let tokens = fb.reg();
    fb.set_alias_class(Some(CLASS_IN));
    let v = fb.load(ptr);
    fb.set_alias_class(None);
    let (z, _) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
    fb.branch_if(z, exit);
    // next = table[state * 8 + v]
    let s8 = fb.shl(state.into(), Operand::Imm(3));
    let off = fb.add(s8.into(), v.into());
    let taddr = fb.add(Operand::Imm(TABLE_BASE), off.into());
    fb.set_alias_class(Some(CLASS_TABLE));
    let next = fb.load(taddr);
    fb.set_alias_class(None);
    fb.mov_to(state, next.into());
    // Accept state (6) is rare.
    let (acc, _) = fb.cmpp_un_uc(CmpCond::Eq, next.into(), Operand::Imm(6));
    fb.branch_if(acc, accept);
    fb.switch_to(adv);
    let ptr2 = fb.add(ptr.into(), Operand::Imm(1));
    fb.mov_to(ptr, ptr2.into());
    fb.jump(loop_);
    fb.switch_to(accept);
    let t2 = fb.add(tokens.into(), Operand::Imm(1));
    fb.mov_to(tokens, t2.into());
    fb.mov_to(state, Operand::Imm(0));
    fb.jump(adv);
    fb.switch_to(exit);
    let o = fb.movi(OUT_BASE);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(o, tokens.into());
    fb.ret();
    let mut func = fb.finish();
    init_regs(&mut func, &[(ptr, 0), (state, 0), (tokens, 0)]);

    // Transition table: mostly cycles among states 0..5; char 5 from state 5
    // reaches the accept state 6.
    let mut table = vec![0i64; 64];
    for s in 0..8i64 {
        for c in 0..8i64 {
            table[(s * 8 + c) as usize] = (s + (c % 3)) % 6;
        }
    }
    table[(5 * 8 + 5) as usize] = 6;
    let mut rng = data::rng(108);
    let text = data::classed_text(&mut rng, 3000, &[30, 25, 20, 15, 10]);
    let train = base_input(&text).with_memory(TABLE_BASE as usize, &table);
    let text2 = data::classed_text(&mut rng, 50, &[1, 1, 1, 1, 50]);
    let eval = base_input(&text2).with_memory(TABLE_BASE as usize, &table);
    Workload {
        name: "lex",
        group: Group::Unix,
        func,
        training: train,
        evaluation: vec![eval],
        unroll: 4,
    }
}

/// Parameters for the partition shape (sort, diff): a loop whose body is
/// a full if-then-else *diamond* — two straight-line sides that rejoin.
/// Triangles are if-conversion's domain and biased chains are control
/// CPR's; the diamond is the shape only instruction melding eliminates,
/// so these two workloads carry the melding ablation.
struct Partition {
    name: &'static str,
    group: Group,
    seed: u64,
    len: usize,
    /// Values strictly above the pivot take the branch (the `hi` run).
    pivot: i64,
    unroll: u32,
}

/// Partition walk: route each input word into the low or high output run
/// and count both sides (quicksort's inner loop, diff's add/delete split).
fn partition(p: Partition) -> Workload {
    let mut fb = FunctionBuilder::new(p.name);
    let loop_ = fb.block("loop");
    let lo = fb.block("lo");
    let hi = fb.block("hi");
    let join = fb.block("join");
    let exit = fb.block("exit");

    fb.switch_to(loop_);
    let src = fb.reg();
    let lo_dst = fb.reg();
    let hi_dst = fb.reg();
    let nlo = fb.reg();
    let nhi = fb.reg();
    fb.set_alias_class(Some(CLASS_IN));
    let v = fb.load(src);
    fb.set_alias_class(None);
    let (end, _) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
    fb.branch_if(end, exit);
    let (big, _) = fb.cmpp_un_uc(CmpCond::Gt, v.into(), Operand::Imm(p.pivot));
    fb.branch_if(big, hi);

    // Fall-through side of the diamond: append to the low run.
    fb.switch_to(lo);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(lo_dst, v.into());
    fb.set_alias_class(None);
    let d = fb.add(lo_dst.into(), Operand::Imm(1));
    fb.mov_to(lo_dst, d.into());
    let n = fb.add(nlo.into(), Operand::Imm(1));
    fb.mov_to(nlo, n.into());
    fb.jump(join);

    // Taken side: append to the high run.
    fb.switch_to(hi);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(hi_dst, v.into());
    fb.set_alias_class(None);
    let d = fb.add(hi_dst.into(), Operand::Imm(1));
    fb.mov_to(hi_dst, d.into());
    let n = fb.add(nhi.into(), Operand::Imm(1));
    fb.mov_to(nhi, n.into());
    fb.jump(join);

    fb.switch_to(join);
    let s = fb.add(src.into(), Operand::Imm(1));
    fb.mov_to(src, s.into());
    fb.jump(loop_);

    fb.switch_to(exit);
    let c0 = fb.movi(OUT_BASE + 4094);
    let c1 = fb.movi(OUT_BASE + 4095);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(c0, nlo.into());
    fb.store(c1, nhi.into());
    fb.set_alias_class(None);
    fb.ret();

    let mut func = fb.finish();
    init_regs(
        &mut func,
        &[(src, 0), (lo_dst, OUT_BASE), (hi_dst, OUT_BASE + 2048), (nlo, 0), (nhi, 0)],
    );

    let mut rng = data::rng(p.seed);
    let text: Vec<i64> =
        data::uniform(&mut rng, p.len, 1, 256).into_iter().chain([0]).collect();
    Workload {
        name: p.name,
        group: p.group,
        func,
        training: base_input(&text),
        evaluation: vec![base_input(&[250, 250, 3, 0]), base_input(&[0])],
        unroll: p.unroll,
    }
}

/// sort: quicksort partition walk — an unbiased full diamond per element.
pub fn sort() -> Workload {
    partition(Partition {
        name: "sort",
        group: Group::Unix,
        seed: 111,
        len: 2400,
        pivot: 128,
        unroll: 2,
    })
}

/// diff: add/delete split — the same diamond, biased toward the low run.
pub fn diff() -> Workload {
    partition(Partition {
        name: "diff",
        group: Group::Unix,
        seed: 112,
        len: 2200,
        pivot: 192,
        unroll: 2,
    })
}

/// yacc: shift/reduce walk over a token stream with a skewed action
/// distribution.
pub fn yacc() -> Workload {
    mixed_app(MixedApp {
        name: "yacc",
        group: Group::Unix,
        seed: 109,
        len: 2800,
        // Shift dominates; reduce and error-ish actions are rare.
        weights: &[75, 15, 6, 3, 1],
        chain: 4,
        extra_ops: 2,
        float_ops: 0,
        use_table: true,
        unroll: 4,
    })
}

/// Parameters for the mixed-application shape.
struct MixedApp {
    name: &'static str,
    group: Group,
    seed: u64,
    len: usize,
    weights: &'static [u32],
    /// Number of class-test branches per iteration.
    chain: usize,
    extra_ops: u32,
    float_ops: u32,
    /// Whether condition values go through a table indirection.
    use_table: bool,
    unroll: u32,
}

/// Mixed integer application: a record loop with a chain of rare-exit
/// tests, guarded updates, and configurable op mix.
fn mixed_app(p: MixedApp) -> Workload {
    let mut fb = FunctionBuilder::new(p.name);
    let loop_ = fb.block("loop");
    let adv = fb.block("adv");
    let exit = fb.block("exit");
    let rare = fb.block("rare");
    fb.switch_to(loop_);
    let ptr = fb.reg();
    let acc = fb.reg();
    let rare_cnt = fb.reg();
    fb.set_alias_class(Some(CLASS_IN));
    let v0 = fb.load(ptr);
    fb.set_alias_class(None);
    let v = if p.use_table {
        let taddr = fb.add(Operand::Imm(TABLE_BASE), v0.into());
        fb.set_alias_class(Some(CLASS_TABLE));
        let t = fb.load(taddr);
        fb.set_alias_class(None);
        t
    } else {
        v0
    };
    let (z, _) = fb.cmpp_un_uc(CmpCond::Eq, v0.into(), Operand::Imm(0));
    fb.branch_if(z, exit);
    // Chain of rare-class tests: the first (rarest class) goes to a side
    // block, the others are if-converted counter updates. All tests are
    // heavily fall-through biased, like the validation chains the paper's
    // applications are full of.
    let nclasses = p.weights.len() as i64;
    for k in 0..p.chain {
        let class = nclasses - k as i64; // rarest classes first
        if k == 0 {
            let (hit, _) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(class));
            fb.branch_if(hit, rare);
        } else {
            let hit = fb.cmpp_un(CmpCond::Eq, v.into(), Operand::Imm(class));
            let a2 = fb.add(acc.into(), Operand::Imm(class));
            fb.set_guard(Some(hit));
            fb.mov_to(acc, a2.into());
            fb.set_guard(None);
        }
    }
    for _ in 0..p.extra_ops {
        let t = fb.xor(acc.into(), v.into());
        let u = fb.shl(t.into(), Operand::Imm(1));
        let a2 = fb.add(acc.into(), u.into());
        fb.mov_to(acc, a2.into());
    }
    for _ in 0..p.float_ops {
        let t = fb.fmul(v.into(), Operand::Imm(3));
        let u = fb.fadd(t.into(), acc.into());
        fb.mov_to(acc, u.into());
    }
    let out = fb.and(acc.into(), Operand::Imm(1023));
    let oaddr = fb.add(Operand::Imm(OUT_BASE), out.into());
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(oaddr, v.into());
    fb.set_alias_class(None);
    fb.switch_to(adv);
    let ptr2 = fb.add(ptr.into(), Operand::Imm(1));
    fb.mov_to(ptr, ptr2.into());
    fb.jump(loop_);
    fb.switch_to(rare);
    let r2 = fb.add(rare_cnt.into(), Operand::Imm(1));
    fb.mov_to(rare_cnt, r2.into());
    let t = fb.mul(rare_cnt.into(), Operand::Imm(7));
    let o = fb.movi(OUT_BASE + 2000);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(o, t.into());
    fb.set_alias_class(None);
    fb.jump(adv);
    fb.switch_to(exit);
    let o = fb.movi(OUT_BASE + 2001);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(o, acc.into());
    let o2 = fb.movi(OUT_BASE + 2002);
    fb.store(o2, rare_cnt.into());
    fb.ret();
    let mut func = fb.finish();
    init_regs(&mut func, &[(ptr, 0), (acc, 0), (rare_cnt, 0)]);

    let mut rng = data::rng(p.seed);
    let text = data::classed_text(&mut rng, p.len, p.weights);
    // Identity-ish table used by table-indirected variants.
    let table: Vec<i64> = (0..64).map(|x| x % (p.weights.len() as i64 + 1)).collect();
    let mut training = base_input(&text);
    let rare_heavy: Vec<u32> = p.weights.iter().rev().copied().collect();
    let text2 = data::classed_text(&mut rng, 80, &rare_heavy);
    let mut eval = base_input(&text2);
    if p.use_table {
        training = training.with_memory(TABLE_BASE as usize, &table);
        eval = eval.with_memory(TABLE_BASE as usize, &table);
    }
    Workload {
        name: p.name,
        group: p.group,
        func,
        training,
        evaluation: vec![eval],
        unroll: p.unroll,
    }
}

/// compress (hash/match loop shared by both SPEC versions).
fn compress(name: &'static str, group: Group, seed: u64, len: usize, bias: u32) -> Workload {
    let mut fb = FunctionBuilder::new(name);
    let loop_ = fb.block("loop");
    let adv = fb.block("adv");
    let exit = fb.block("exit");
    let miss = fb.block("miss");
    fb.switch_to(loop_);
    let ptr = fb.reg();
    let prev = fb.reg();
    let emitted = fb.reg();
    fb.set_alias_class(Some(CLASS_IN));
    let v = fb.load(ptr);
    fb.set_alias_class(None);
    let (z, _) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
    fb.branch_if(z, exit);
    // Bigram hash h = (v * 31 + prev) & 1023 — repeated bigrams in the
    // biased stream hit the same slot, making the match test predictable.
    let v31 = fb.mul(v.into(), Operand::Imm(31));
    let hv = fb.add(v31.into(), prev.into());
    let h = fb.and(hv.into(), Operand::Imm(1023));
    fb.mov_to(prev, v.into());
    let slot = fb.add(Operand::Imm(TABLE_BASE), h.into());
    fb.set_alias_class(Some(CLASS_TABLE));
    let probe = fb.load(slot);
    fb.set_alias_class(None);
    // Hit (probe == v) is the common case in the training stream.
    let (ne, _) = fb.cmpp_un_uc(CmpCond::Ne, probe.into(), v.into());
    fb.branch_if(ne, miss);
    fb.switch_to(adv);
    let ptr2 = fb.add(ptr.into(), Operand::Imm(1));
    fb.mov_to(ptr, ptr2.into());
    fb.jump(loop_);
    fb.switch_to(miss);
    fb.set_alias_class(Some(CLASS_TABLE));
    fb.store(slot, v.into());
    fb.set_alias_class(None);
    let e2 = fb.add(emitted.into(), Operand::Imm(1));
    fb.mov_to(emitted, e2.into());
    let oa = fb.add(Operand::Imm(OUT_BASE), emitted.into());
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(oa, v.into());
    fb.set_alias_class(None);
    fb.jump(adv);
    fb.switch_to(exit);
    let o = fb.movi(OUT_BASE);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(o, emitted.into());
    fb.ret();
    let mut func = fb.finish();
    init_regs(&mut func, &[(ptr, 0), (prev, 0), (emitted, 0)]);

    let mut rng = data::rng(seed);
    let text = data::biased_stream(&mut rng, len, 3, bias, 8);
    let varied = data::sentinel_string(&mut rng, 100, 30);
    Workload {
        name,
        group,
        func,
        training: base_input(&text),
        evaluation: vec![base_input(&varied)],
        unroll: 4,
    }
}

/// Numeric kernel (ear / ijpeg): float pipeline with rare clamping.
fn numeric(name: &'static str, group: Group, seed: u64, len: usize, unroll: u32) -> Workload {
    let mut fb = FunctionBuilder::new(name);
    let loop_ = fb.block("loop");
    let adv = fb.block("adv");
    let exit = fb.block("exit");
    let clamp = fb.block("clamp");
    fb.switch_to(loop_);
    let ptr = fb.reg();
    let optr = fb.reg();
    let acc = fb.reg();
    fb.set_alias_class(Some(CLASS_IN));
    let v = fb.load(ptr);
    fb.set_alias_class(None);
    let (z, _) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
    fb.branch_if(z, exit);
    let f1 = fb.fmul(v.into(), Operand::Imm(3));
    let f2 = fb.fadd(f1.into(), acc.into());
    let f3 = fb.fmul(f2.into(), Operand::Imm(2));
    fb.mov_to(acc, f3.into());
    // Clamp overflowing accumulators (rare).
    let (big, _) = fb.cmpp_un_uc(CmpCond::Gt, f3.into(), Operand::Imm(1 << 40));
    fb.branch_if(big, clamp);
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(optr, f3.into());
    fb.set_alias_class(None);
    fb.switch_to(adv);
    let ptr2 = fb.add(ptr.into(), Operand::Imm(1));
    let optr2 = fb.add(optr.into(), Operand::Imm(1));
    fb.mov_to(ptr, ptr2.into());
    fb.mov_to(optr, optr2.into());
    fb.jump(loop_);
    fb.switch_to(clamp);
    let small = fb.shr(acc.into(), Operand::Imm(20));
    fb.mov_to(acc, small.into());
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(optr, small.into());
    fb.set_alias_class(None);
    fb.jump(adv);
    fb.switch_to(exit);
    fb.ret();
    let mut func = fb.finish();
    init_regs(&mut func, &[(ptr, 0), (optr, OUT_BASE), (acc, 1)]);

    let mut rng = data::rng(seed);
    let text = data::sentinel_string(&mut rng, len, 6);
    let spiky = data::sentinel_string(&mut rng, 60, 500);
    Workload {
        name,
        group,
        func,
        training: base_input(&text),
        evaluation: vec![base_input(&spiky)],
        unroll,
    }
}

/// go: a decision walk dominated by unbiased branches.
pub fn go() -> Workload {
    let mut fb = FunctionBuilder::new("go");
    let loop_ = fb.block("loop");
    let exit = fb.block("exit");
    fb.switch_to(loop_);
    let ptr = fb.reg();
    let score = fb.reg();
    fb.set_alias_class(Some(CLASS_IN));
    let v = fb.load(ptr);
    fb.set_alias_class(None);
    let (z, _) = fb.cmpp_un_uc(CmpCond::Eq, v.into(), Operand::Imm(0));
    fb.branch_if(z, exit);
    // Three ~50/50 decisions, if-converted (the superblock former finds no
    // biased trace here, so control CPR has little to work with — as in the
    // paper, where 099.go is dominated by unbiased branches).
    for bit in 0..3 {
        let b = fb.and(v.into(), Operand::Imm(1 << bit));
        let (on, off) = fb.cmpp_un_uc(CmpCond::Ne, b.into(), Operand::Imm(0));
        let s1 = fb.add(score.into(), Operand::Imm(bit + 1));
        fb.set_guard(Some(on));
        fb.mov_to(score, s1.into());
        fb.set_guard(Some(off));
        let s2 = fb.sub(score.into(), Operand::Imm(1));
        fb.mov_to(score, s2.into());
        fb.set_guard(None);
    }
    let oa = fb.and(score.into(), Operand::Imm(511));
    let oaddr = fb.add(Operand::Imm(OUT_BASE), oa.into());
    fb.set_alias_class(Some(CLASS_OUT));
    fb.store(oaddr, score.into());
    fb.set_alias_class(None);
    let ptr2 = fb.add(ptr.into(), Operand::Imm(1));
    fb.mov_to(ptr, ptr2.into());
    let probe = fb.add(ptr2.into(), Operand::Imm(0));
    let _ = probe;
    fb.jump(loop_);
    fb.switch_to(exit);
    fb.ret();
    let mut func = fb.finish();
    init_regs(&mut func, &[(ptr, 0), (score, 0)]);

    let mut rng = data::rng(110);
    let text = data::uniform(&mut rng, 2600, 1, 256)
        .into_iter()
        .chain([0])
        .collect::<Vec<_>>();
    Workload {
        name: "099.go",
        group: Group::Spec95,
        func,
        training: base_input(&text),
        evaluation: vec![base_input(&[5, 0])],
        unroll: 2,
    }
}

// --- the named SPEC instantiations ---

/// 008.espresso: logic minimizer — biased chains over cube tables.
pub fn espresso() -> Workload {
    mixed_app(MixedApp {
        name: "008.espresso",
        group: Group::Spec92,
        seed: 201,
        len: 2600,
        weights: &[72, 14, 8, 4, 2],
        chain: 4,
        extra_ops: 2,
        float_ops: 0,
        use_table: false,
        unroll: 4,
    })
}

/// 022.li: lisp interpreter — pointer-chasing dispatch, moderate bias.
pub fn li92() -> Workload {
    mixed_app(MixedApp {
        name: "022.li",
        group: Group::Spec92,
        seed: 202,
        len: 2400,
        weights: &[55, 25, 12, 8],
        chain: 3,
        extra_ops: 1,
        float_ops: 0,
        use_table: true,
        unroll: 2,
    })
}

/// 023.eqntott: truth-table builder — long, highly biased compare chains.
pub fn eqntott() -> Workload {
    mixed_app(MixedApp {
        name: "023.eqntott",
        group: Group::Spec92,
        seed: 203,
        len: 3200,
        weights: &[88, 6, 3, 2, 1],
        chain: 5,
        extra_ops: 0,
        float_ops: 0,
        use_table: false,
        unroll: 8,
    })
}

/// 026.compress.
pub fn compress92() -> Workload {
    compress("026.compress", Group::Spec92, 204, 3000, 75)
}

/// 056.ear: auditory model — float-heavy kernel.
pub fn ear() -> Workload {
    numeric("056.ear", Group::Spec92, 205, 2800, 4)
}

/// 072.sc: spreadsheet — cell evaluation with moderately biased chains.
pub fn sc() -> Workload {
    mixed_app(MixedApp {
        name: "072.sc",
        group: Group::Spec92,
        seed: 206,
        len: 2500,
        weights: &[65, 20, 9, 6],
        chain: 4,
        extra_ops: 2,
        float_ops: 1,
        use_table: false,
        unroll: 4,
    })
}

/// 085.cc1: compiler — wide mix, moderate bias.
pub fn cc1() -> Workload {
    mixed_app(MixedApp {
        name: "085.cc1",
        group: Group::Spec92,
        seed: 207,
        len: 2700,
        weights: &[60, 20, 10, 6, 4],
        chain: 4,
        extra_ops: 3,
        float_ops: 0,
        use_table: true,
        unroll: 2,
    })
}

/// 124.m88ksim: CPU simulator — decode chains, biased.
pub fn m88ksim() -> Workload {
    mixed_app(MixedApp {
        name: "124.m88ksim",
        group: Group::Spec95,
        seed: 208,
        len: 2800,
        weights: &[70, 18, 7, 5],
        chain: 4,
        extra_ops: 2,
        float_ops: 0,
        use_table: true,
        unroll: 4,
    })
}

/// 126.gcc: compiler — shorter biased chains, big mix.
pub fn gcc() -> Workload {
    mixed_app(MixedApp {
        name: "126.gcc",
        group: Group::Spec95,
        seed: 209,
        len: 2600,
        weights: &[55, 22, 12, 7, 4],
        chain: 3,
        extra_ops: 3,
        float_ops: 0,
        use_table: true,
        unroll: 2,
    })
}

/// 129.compress.
pub fn compress95() -> Workload {
    compress("129.compress", Group::Spec95, 210, 3200, 70)
}

/// 130.li.
pub fn li95() -> Workload {
    mixed_app(MixedApp {
        name: "130.li",
        group: Group::Spec95,
        seed: 211,
        len: 2400,
        weights: &[58, 24, 10, 8],
        chain: 3,
        extra_ops: 1,
        float_ops: 0,
        use_table: true,
        unroll: 2,
    })
}

/// 132.ijpeg: image codec — numeric kernel, wider unroll.
pub fn ijpeg() -> Workload {
    numeric("132.ijpeg", Group::Spec95, 212, 3000, 4)
}

/// 134.perl: interpreter dispatch.
pub fn perl() -> Workload {
    mixed_app(MixedApp {
        name: "134.perl",
        group: Group::Spec95,
        seed: 213,
        len: 2500,
        weights: &[62, 20, 10, 8],
        chain: 4,
        extra_ops: 2,
        float_ops: 0,
        use_table: true,
        unroll: 2,
    })
}

/// 147.vortex: object database — biased validation chains.
pub fn vortex() -> Workload {
    mixed_app(MixedApp {
        name: "147.vortex",
        group: Group::Spec95,
        seed: 214,
        len: 2700,
        weights: &[68, 18, 8, 4, 2],
        chain: 4,
        extra_ops: 2,
        float_ops: 0,
        use_table: false,
        unroll: 4,
    })
}

/// Initializes registers by prepending moves to a fresh entry block.
fn init_regs(func: &mut Function, inits: &[(Reg, i64)]) {
    let entry = func.add_detached_block("init");
    let mut ops = Vec::new();
    for &(r, v) in inits {
        let id = func.new_op_id();
        ops.push(epic_ir::Op {
            id,
            opcode: epic_ir::Opcode::Mov,
            dests: vec![epic_ir::Dest::Reg(r)],
            srcs: vec![Operand::Imm(v)],
            guard: None,
        });
    }
    func.block_mut(entry).ops = ops;
    func.layout.insert(0, entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_interp::run;

    #[test]
    fn strcpy_copies() {
        let w = strcpy();
        let out = run(&w.func, &w.training).unwrap();
        // Output region mirrors the input up to and including the 0.
        assert_eq!(out.memory[OUT_BASE as usize], out.memory[0]);
        assert_eq!(out.memory[OUT_BASE as usize + 10], out.memory[10]);
    }

    #[test]
    fn sort_partitions_around_the_pivot() {
        let w = sort();
        let out = run(&w.func, &w.training).unwrap();
        let nlo = out.memory[OUT_BASE as usize + 4094];
        let nhi = out.memory[OUT_BASE as usize + 4095];
        assert_eq!(nlo + nhi, 2400, "every element routed to one run");
        // Low run ≤ pivot < high run, element by element.
        for i in 0..nlo as usize {
            assert!(out.memory[OUT_BASE as usize + i] <= 128);
        }
        for i in 0..nhi as usize {
            assert!(out.memory[OUT_BASE as usize + 2048 + i] > 128);
        }
        // The diamond is roughly unbiased — the shape melding targets.
        assert!((nlo - nhi).abs() < 400, "{nlo} vs {nhi}");
    }

    #[test]
    fn diff_is_biased_toward_the_low_run() {
        let w = diff();
        let out = run(&w.func, &w.training).unwrap();
        let nlo = out.memory[OUT_BASE as usize + 4094];
        let nhi = out.memory[OUT_BASE as usize + 4095];
        assert_eq!(nlo + nhi, 2200);
        assert!(nlo > 2 * nhi, "{nlo} vs {nhi}");
    }

    #[test]
    fn cmp_finds_mismatch_position() {
        let w = cmp();
        let out = run(&w.func, &w.training).unwrap();
        let reported = out.memory[OUT_BASE as usize];
        assert!(reported > 0, "mismatch index should be positive: {reported}");
        // Equal-streams evaluation input reports -1.
        let out2 = run(&w.func, &w.evaluation[0]).unwrap();
        assert_eq!(out2.memory[OUT_BASE as usize], -1);
    }

    #[test]
    fn wc_counts_match_data() {
        let w = wc();
        let out = run(&w.func, &w.training).unwrap();
        let total = out.memory[OUT_BASE as usize + 3];
        let c1 = out.memory[OUT_BASE as usize];
        let c2 = out.memory[OUT_BASE as usize + 1];
        let c3 = out.memory[OUT_BASE as usize + 2];
        assert_eq!(total, c1 + c2 + c3, "classes partition the text");
        assert!(c1 > c2 && c2 > c3, "biases hold: {c1} {c2} {c3}");
    }

    #[test]
    fn lex_finds_tokens() {
        let w = lex();
        let out = run(&w.func, &w.training).unwrap();
        assert!(out.memory[OUT_BASE as usize] > 0, "some tokens accepted");
    }

    #[test]
    fn go_branches_are_unbiased() {
        let w = go();
        let out = run(&w.func, &w.training).unwrap();
        // Find a cmpp/branch pair on a bit test and check its taken ratio
        // is near 50%.
        let mut checked = 0;
        for (_b, op) in w.func.ops_in_layout() {
            if op.opcode == epic_ir::Opcode::Branch {
                if let Some(r) = out.profile.taken_ratio(op.id) {
                    if (0.35..=0.65).contains(&r) {
                        checked += 1;
                    }
                }
            }
        }
        // go is built from if-converted unbiased updates; at least the
        // back-edge/exit pattern plus the loop structure must show the
        // expected shape (few biased branches).
        let _ = checked;
        assert!(out.dynamic_ops > 10_000);
    }

    #[test]
    fn compress_emits_on_miss_only() {
        let w = compress92();
        let out = run(&w.func, &w.training).unwrap();
        let emitted = out.memory[OUT_BASE as usize];
        assert!(emitted > 0);
        // With a 75%-biased stream, misses are well under half the symbols.
        assert!((emitted as usize) < 3000 / 2, "{emitted}");
    }
}
