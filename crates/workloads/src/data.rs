//! Synthetic input-data generators.
//!
//! Each workload's branch biases come from the *data* it processes, just as
//! in the real benchmarks — profiles are measured by executing the programs,
//! never fabricated. Generators are seeded so the suite is deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG for one workload.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A "string": values in `1..=max` terminated by a single 0.
pub fn sentinel_string(rng: &mut StdRng, len: usize, max: i64) -> Vec<i64> {
    let mut v: Vec<i64> = (0..len).map(|_| rng.gen_range(1..=max)).collect();
    v.push(0);
    v
}

/// Text with a character-class distribution: `weights[k]` is the relative
/// frequency of class value `k + 1` (value 0 is reserved for the
/// terminator).
pub fn classed_text(rng: &mut StdRng, len: usize, weights: &[u32]) -> Vec<i64> {
    let total: u32 = weights.iter().sum();
    assert!(total > 0, "need at least one class");
    let mut v = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let mut pick = rng.gen_range(0..total);
        let mut class = 0usize;
        for (k, &w) in weights.iter().enumerate() {
            if pick < w {
                class = k;
                break;
            }
            pick -= w;
        }
        v.push(class as i64 + 1);
    }
    v.push(0);
    v
}

/// Uniform random values in `lo..hi` (no terminator).
pub fn uniform(rng: &mut StdRng, len: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Values that equal `common` with probability `bias` (percent) and a
/// random other value in `1..=max` otherwise, terminated by 0.
pub fn biased_stream(rng: &mut StdRng, len: usize, common: i64, bias: u32, max: i64) -> Vec<i64> {
    let mut v = Vec::with_capacity(len + 1);
    for _ in 0..len {
        if rng.gen_range(0..100) < bias {
            v.push(common);
        } else {
            let mut x = rng.gen_range(1..=max);
            if x == common {
                x = if x == max { x - 1 } else { x + 1 };
            }
            v.push(x.max(1));
        }
    }
    v.push(0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_string_terminates() {
        let mut r = rng(1);
        let v = sentinel_string(&mut r, 100, 9);
        assert_eq!(v.len(), 101);
        assert_eq!(*v.last().unwrap(), 0);
        assert!(v[..100].iter().all(|&x| (1..=9).contains(&x)));
    }

    #[test]
    fn classed_text_obeys_weights_roughly() {
        let mut r = rng(2);
        let v = classed_text(&mut r, 10_000, &[90, 10]);
        let ones = v.iter().filter(|&&x| x == 1).count();
        assert!(ones > 8_500 && ones < 9_500, "{ones}");
        assert_eq!(*v.last().unwrap(), 0);
    }

    #[test]
    fn biased_stream_is_biased() {
        let mut r = rng(3);
        let v = biased_stream(&mut r, 10_000, 7, 80, 20);
        let common = v.iter().filter(|&&x| x == 7).count();
        assert!(common > 7_500 && common < 8_500, "{common}");
        assert!(v[..10_000].iter().all(|&x| x != 0));
    }

    #[test]
    fn determinism() {
        let a = sentinel_string(&mut rng(42), 50, 5);
        let b = sentinel_string(&mut rng(42), 50, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_bounds() {
        let v = uniform(&mut rng(4), 1000, -5, 5);
        assert!(v.iter().all(|&x| (-5..5).contains(&x)));
    }
}
