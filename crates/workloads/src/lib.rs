//! # epic-workloads
//!
//! The benchmark suite for the Control CPR reproduction.
//!
//! The paper evaluates on SPEC-92/95 applications and Unix utilities
//! compiled by IMPACT into superblock code. Neither the binaries nor the
//! toolchain are available, so each benchmark is modeled as a *synthetic IR
//! program* that reproduces the properties control CPR is sensitive to:
//! the length of consecutive-branch chains, the branch bias structure
//! (driven by real, seeded input data), the separability of branch-condition
//! computation, and the operation mix (integer / floating / memory). The
//! programs are executed by `epic-interp` on their training inputs, so every
//! profile and dynamic count in the experiments is measured, not assumed.
//!
//! Ten program **shapes** cover the behavioural space (see [`shapes`]);
//! the 26 named workloads instantiate them with per-benchmark parameters
//! and data distributions:
//!
//! | shape | benchmarks modeled |
//! |---|---|
//! | sentinel scan/copy | `strcpy`, `cmp` |
//! | full-diamond partition walk | `sort`, `diff` |
//! | character-class chain | `wc`, `cccp`, `eqn`, `tbl` |
//! | substring search | `grep` |
//! | DFA/scanner loop | `lex` |
//! | shift/reduce table walk | `yacc` |
//! | hash/match compress loop | `026.compress`, `129.compress` |
//! | numeric kernel with clamps | `056.ear`, `132.ijpeg` |
//! | unbiased decision walk | `099.go` |
//! | mixed integer application | `008.espresso`, `022.li`, `023.eqntott`, `072.sc`, `085.cc1`, `124.m88ksim`, `126.gcc`, `130.li`, `134.perl`, `147.vortex` |
//!
//! ```
//! let suite = epic_workloads::all();
//! assert_eq!(suite.len(), 26);
//! let strcpy = epic_workloads::by_name("strcpy").unwrap();
//! let out = epic_interp::run(&strcpy.func, &strcpy.training).unwrap();
//! assert!(out.dynamic_ops > 0);
//! ```

pub mod corpus;
pub mod data;
pub mod shapes;

pub use corpus::{all_with_corpus, corpus};

use epic_interp::Input;
use epic_ir::Function;

/// The benchmark group a workload belongss to (the paper's table grouping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Group {
    /// SPEC-92 applications.
    Spec92,
    /// SPEC-95 applications.
    Spec95,
    /// Unix utilities.
    Unix,
    /// Machine-generated RISC-lite corpus programs (the large tier; not
    /// part of the paper's tables).
    Corpus,
}

/// A runnable benchmark: an IR program plus its training and evaluation
/// inputs.
#[derive(Debug)]
pub struct Workload {
    /// Benchmark name (matches the paper's tables, e.g. `"023.eqntott"`).
    pub name: &'static str,
    /// Table grouping.
    pub group: Group,
    /// The program, straight-line CFG form (pre-region-formation).
    pub func: Function,
    /// The training input used for profiling and for the dynamic counts.
    pub training: Input,
    /// Additional inputs exercising rare paths, used for differential
    /// testing of the compilation pipeline.
    pub evaluation: Vec<Input>,
    /// The unroll factor applied to the hot loop by the pipeline.
    pub unroll: u32,
}

/// The whole suite, in the paper's table order (SPEC-92, SPEC-95, Unix).
pub fn all() -> Vec<Workload> {
    vec![
        shapes::espresso(),
        shapes::li92(),
        shapes::eqntott(),
        shapes::compress92(),
        shapes::ear(),
        shapes::sc(),
        shapes::cc1(),
        shapes::go(),
        shapes::m88ksim(),
        shapes::gcc(),
        shapes::compress95(),
        shapes::li95(),
        shapes::ijpeg(),
        shapes::perl(),
        shapes::vortex(),
        shapes::cccp(),
        shapes::cmp(),
        shapes::diff(),
        shapes::eqn(),
        shapes::grep(),
        shapes::lex(),
        shapes::sort(),
        shapes::strcpy(),
        shapes::tbl(),
        shapes::wc(),
        shapes::yacc(),
    ]
}

/// Looks a workload up by name, searching the paper suite and then the
/// large-tier corpus.
pub fn by_name(name: &str) -> Option<Workload> {
    all()
        .into_iter()
        .find(|w| w.name == name)
        .or_else(|| name.starts_with("corpus.").then(|| corpus::corpus().into_iter().find(|w| w.name == name)).flatten())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_paper_benchmarks_plus_diamond_workloads() {
        // 7 SPEC-92 + 8 SPEC-95 + 11 utilities: the paper's 24 rows (both
        // compress versions are separate, exactly as in Table 2, and the
        // paper lists strcpy among the utilities) plus sort and diff, the
        // diamond-shaped workloads the melding ablation measures.
        let suite = all();
        assert_eq!(suite.len(), 26);
        let spec92 = suite.iter().filter(|w| w.group == Group::Spec92).count();
        let spec95 = suite.iter().filter(|w| w.group == Group::Spec95).count();
        let unix = suite.iter().filter(|w| w.group == Group::Unix).count();
        assert_eq!(spec92, 7);
        assert_eq!(spec95, 8);
        assert_eq!(unix, 11);
    }

    #[test]
    fn names_are_unique() {
        let suite = all();
        let mut names: Vec<&str> = suite.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn every_workload_verifies_and_runs() {
        for w in all() {
            epic_ir::verify(&w.func).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let out = epic_interp::run(&w.func, &w.training)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(out.dynamic_ops > 1000, "{}: {} ops", w.name, out.dynamic_ops);
            assert!(out.dynamic_branches > 10, "{}", w.name);
            for (k, input) in w.evaluation.iter().enumerate() {
                epic_interp::run(&w.func, input)
                    .unwrap_or_else(|e| panic!("{} eval {k}: {e}", w.name));
            }
        }
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("strcpy").is_some());
        assert!(by_name("099.go").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
