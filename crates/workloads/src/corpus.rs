//! The "large tier": fixed-seed RISC-lite corpus programs as first-class
//! workloads.
//!
//! The 26 paper workloads are hand-built shapes of 12–60 ops; these six
//! corpus programs are machine-generated RISC-lite sources of 1k–10k+
//! instructions (see `epic_riscfe::corpus`), translated into IR by the
//! frontend. They exist to exercise the compile-time asymptotics — ICBM,
//! scheduling, incremental liveness — at realistic function sizes, and to
//! give the tuner a program population it cannot overfit.
//!
//! They are kept *out* of [`crate::all`] so the paper-table suite (and
//! every byte-stable artifact derived from it) is untouched; callers opt
//! in through [`corpus`] or [`all_with_corpus`].

use epic_riscfe::{fixed_corpus, translate};

use crate::{Group, Workload};

/// The fixed corpus workload names, in tier order. Frozen: benchmarks and
/// tables key on them.
pub const CORPUS_NAMES: [&str; 6] = [
    "corpus.chain.1k",
    "corpus.diamond.1k",
    "corpus.loops.2k",
    "corpus.mixed.4k",
    "corpus.chain.6k",
    "corpus.mixed.10k",
];

/// The large-tier suite: the six fixed-seed corpus programs, translated.
pub fn corpus() -> Vec<Workload> {
    let programs = fixed_corpus();
    assert_eq!(programs.len(), CORPUS_NAMES.len());
    programs
        .into_iter()
        .zip(CORPUS_NAMES)
        .map(|(cp, name)| {
            assert_eq!(cp.name, name, "fixed corpus order changed");
            let func = translate(&cp.prog);
            let mut inputs = cp.inputs.into_iter();
            let training = inputs.next().expect("corpus programs have inputs");
            Workload {
                name,
                group: Group::Corpus,
                func,
                training,
                evaluation: inputs.collect(),
                unroll: 2,
            }
        })
        .collect()
}

/// The full suite plus the large tier, for size-scaling experiments.
pub fn all_with_corpus() -> Vec<Workload> {
    let mut suite = crate::all();
    suite.extend(corpus());
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_workloads_verify_and_run() {
        for w in corpus() {
            assert_eq!(w.group, Group::Corpus);
            epic_ir::verify(&w.func).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let out = epic_interp::run(&w.func, &w.training)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(out.dynamic_ops > 1000, "{}: {} ops", w.name, out.dynamic_ops);
            assert!(out.dynamic_branches > 10, "{}", w.name);
            for (k, input) in w.evaluation.iter().enumerate() {
                epic_interp::run(&w.func, input)
                    .unwrap_or_else(|e| panic!("{} eval {k}: {e}", w.name));
            }
        }
    }

    #[test]
    fn corpus_is_opt_in_and_reachable_by_name() {
        assert_eq!(crate::all().len(), 26);
        assert_eq!(all_with_corpus().len(), 32);
        let w = crate::by_name("corpus.mixed.10k").expect("corpus names resolve");
        assert_eq!(w.group, Group::Corpus);
        assert!(crate::by_name("corpus.nonexistent").is_none());
    }

    #[test]
    fn corpus_sizes_span_the_large_tier() {
        let sizes: Vec<usize> = corpus()
            .iter()
            .map(|w| w.func.layout.iter().map(|&b| w.func.block(b).ops.len()).sum())
            .collect();
        assert!(sizes.iter().any(|&s| s >= 10_000), "{sizes:?}");
        assert!(sizes.iter().any(|&s| s >= 5_000), "{sizes:?}");
        assert!(sizes.iter().all(|&s| s >= 1_000), "{sizes:?}");
    }
}
