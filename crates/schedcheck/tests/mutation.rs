//! Mutation kill-rate: every seeded schedule mutation on every workload
//! must be rejected by the checker, under both the widest and the
//! sequential machine.

use epic_machine::Machine;
use epic_sched::SchedOptions;
use epic_schedcheck::mutation_kill_rate;

#[test]
fn all_mutants_killed_on_all_workloads() {
    let opts = SchedOptions::default();
    let mut applied_total = 0u64;
    for w in epic_workloads::all() {
        for machine in [Machine::wide(), Machine::sequential()] {
            let report = mutation_kill_rate(&w.func, &machine, &opts, 16, 0xC0FF_EE00);
            assert!(report.base_valid, "{} base schedule invalid on {}", w.name, machine.name());
            assert!(
                report.applied > 0,
                "{} on {}: no mutation applied",
                w.name,
                machine.name()
            );
            assert_eq!(
                report.killed, report.applied,
                "{} on {}: survivors {:?}",
                w.name,
                machine.name(),
                report.survivors
            );
            assert!(report.perfect());
            applied_total += report.applied;
        }
    }
    assert!(applied_total >= 24 * 2, "suite applied too few mutants: {applied_total}");
}
