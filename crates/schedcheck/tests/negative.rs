//! Hand-minimized negative cases: one per violation kind, asserting
//! stable error rendering.

use epic_ir::{BlockId, Function, FunctionBuilder, Operand};
use epic_machine::{Latencies, Machine, Widths};
use epic_sched::{schedule_function, SchedOptions, Schedule, ScheduledFunction};
use epic_schedcheck::check_function;

fn sched_of(cycles: Vec<i64>, length: i64) -> Schedule {
    Schedule { cycles, length }
}

fn single(func: &Function, machine: &Machine, sched: &ScheduledFunction) -> String {
    let vs = check_function(func, machine, sched, &SchedOptions::default());
    assert_eq!(vs.len(), 1, "expected exactly one violation, got {vs:?}");
    vs[0].to_string()
}

/// entry block with just a `ret`.
fn ret_only() -> (Function, BlockId) {
    let mut b = FunctionBuilder::new("t");
    let e = b.block("e");
    b.switch_to(e);
    b.ret();
    (b.finish(), e)
}

#[test]
fn missing_block() {
    let (f, _) = ret_only();
    let msg = single(&f, &Machine::wide(), &ScheduledFunction::new());
    assert_eq!(msg, "block b0 `e`: no schedule for a block in the layout");
}

#[test]
fn extra_block() {
    let (f, _) = ret_only();
    let mut sched = schedule_function(&f, &Machine::wide(), &SchedOptions::default());
    sched.set_block(BlockId(99), Schedule::empty());
    let msg = single(&f, &Machine::wide(), &sched);
    assert_eq!(msg, "schedule names block b99, which is not in the layout");
}

#[test]
fn op_count_mismatch() {
    let mut b = FunctionBuilder::new("t");
    let e = b.block("e");
    b.switch_to(e);
    b.movi(1);
    b.ret();
    let f = b.finish();
    let mut sched = ScheduledFunction::new();
    sched.set_block(e, sched_of(vec![0], 1));
    let msg = single(&f, &Machine::wide(), &sched);
    assert_eq!(msg, "block b0 `e`: 2 ops but 1 scheduled cycles");
}

#[test]
fn unscheduled_op() {
    let (f, e) = ret_only();
    let mut sched = ScheduledFunction::new();
    sched.set_block(e, sched_of(vec![-1], 1));
    let msg = single(&f, &Machine::wide(), &sched);
    assert_eq!(msg, "block b0 `e`: op 0 has negative issue cycle -1");
}

#[test]
fn length_mismatch() {
    let (f, e) = ret_only();
    let mut sched = ScheduledFunction::new();
    sched.set_block(e, sched_of(vec![0], 5));
    let msg = single(&f, &Machine::wide(), &sched);
    assert_eq!(msg, "block b0 `e`: declared length 5 but issue cycles imply 1");
}

#[test]
fn flow_edge_violated() {
    let mut b = FunctionBuilder::new("t");
    let e = b.block("e");
    b.switch_to(e);
    let x = b.movi(1); // op 0
    let _ = b.add(x.into(), Operand::Imm(1)); // op 1, needs cycle(mov)+1
    b.ret(); // op 2
    let f = b.finish();
    let mut sched = ScheduledFunction::new();
    sched.set_block(e, sched_of(vec![0, 0, 0], 1));
    let msg = single(&f, &Machine::wide(), &sched);
    assert_eq!(msg, "block b0 `e`: flow edge 0->1 (latency 1) violated: cycles 0 -> 0");
}

#[test]
fn mem_edge_violated() {
    let mut b = FunctionBuilder::new("t");
    let e = b.block("e");
    b.switch_to(e);
    let a = b.movi(0); // op 0
    b.store(a, Operand::Imm(1)); // op 1
    let _ = b.load(a); // op 2, must wait out the store (latency 1)
    b.ret(); // op 3
    let f = b.finish();
    let mut sched = ScheduledFunction::new();
    sched.set_block(e, sched_of(vec![0, 1, 1, 1], 3));
    let msg = single(&f, &Machine::wide(), &sched);
    assert_eq!(msg, "block b0 `e`: mem edge 1->2 (latency 1) violated: cycles 1 -> 1");
}

#[test]
fn anti_edge_violated() {
    let mut b = FunctionBuilder::new("t");
    let e = b.block("e");
    b.switch_to(e);
    let r = b.reg();
    let _ = b.add(r.into(), Operand::Imm(1)); // op 0 reads r
    b.mov_to(r, Operand::Imm(5)); // op 1 rewrites r: anti 0->1, latency 0
    b.ret(); // op 2
    let f = b.finish();
    let mut sched = ScheduledFunction::new();
    sched.set_block(e, sched_of(vec![1, 0, 1], 2));
    let msg = single(&f, &Machine::wide(), &sched);
    assert_eq!(msg, "block b0 `e`: anti edge 0->1 (latency 0) violated: cycles 1 -> 0");
}

#[test]
fn output_edge_violated() {
    let mut b = FunctionBuilder::new("t");
    let e = b.block("e");
    b.switch_to(e);
    let r = b.reg();
    b.mov_to(r, Operand::Imm(1)); // op 0
    b.mov_to(r, Operand::Imm(2)); // op 1: output 0->1, latency 1
    b.ret(); // op 2
    let f = b.finish();
    let mut sched = ScheduledFunction::new();
    sched.set_block(e, sched_of(vec![0, 0, 0], 1));
    let msg = single(&f, &Machine::wide(), &sched);
    assert_eq!(msg, "block b0 `e`: output edge 0->1 (latency 1) violated: cycles 0 -> 0");
}

#[test]
fn sequential_issue_overflow() {
    let mut b = FunctionBuilder::new("t");
    let e = b.block("e");
    b.switch_to(e);
    b.movi(1); // op 0
    b.movi(2); // op 1
    b.ret(); // op 2
    let f = b.finish();
    let mut sched = ScheduledFunction::new();
    sched.set_block(e, sched_of(vec![0, 0, 1], 2));
    let msg = single(&f, &Machine::sequential(), &sched);
    assert_eq!(msg, "block b0 `e`: cycle 0 issues 2 ops on the sequential machine");
}

#[test]
fn class_issue_overflow() {
    let mut b = FunctionBuilder::new("t");
    let e = b.block("e");
    b.switch_to(e);
    b.movi(1); // ops 0..3: three int ops on a 2-int machine
    b.movi(2);
    b.movi(3);
    b.ret(); // op 3
    let f = b.finish();
    let machine = Machine::new(
        "twoint",
        Some(Widths { int: 2, float: 1, mem: 1, branch: 1 }),
        Latencies::default(),
    );
    let mut sched = ScheduledFunction::new();
    sched.set_block(e, sched_of(vec![0, 0, 0, 1], 2));
    let msg = single(&f, &machine, &sched);
    assert_eq!(msg, "block b0 `e`: cycle 0 issues 3 int ops but the machine has 2 int units");
}

#[test]
fn branch_order_violated() {
    let mut b = FunctionBuilder::new("t");
    let e = b.block("e");
    let out = b.block("out");
    b.switch_to(out);
    b.ret();
    b.switch_to(e);
    b.jump(out); // ops 0 (pbr) and 1 (branch)
    b.jump(out); // ops 2 (pbr) and 3 (branch): must trail branch 1 by blat
    let f = b.finish();
    let mut sched = ScheduledFunction::new();
    sched.set_block(e, sched_of(vec![0, 1, 0, 1], 2));
    sched.set_block(out, sched_of(vec![0], 1));
    let msg = single(&f, &Machine::wide(), &sched);
    assert_eq!(
        msg,
        "block b0 `e`: branch 3 (cycle 1) in the shadow of branch 1 (cycle 1): needs gap 1"
    );
}

#[test]
fn exit_availability_violated() {
    let mut b = FunctionBuilder::new("t");
    let e = b.block("e");
    let out = b.block("out");
    b.switch_to(out);
    let d = b.movi(9);
    b.switch_to(e);
    let a = b.movi(0); // op 0
    let v = b.load(a); // op 1: latency 2, live at `out`
    b.jump(out); // ops 2 (pbr) and 3 (branch)
    b.switch_to(out);
    b.store(d, v.into());
    b.ret();
    let f = b.finish();
    let mut sched = ScheduledFunction::new();
    // Branch takes in cycle 1 but the load completes in cycle 3: the value
    // live at the target is not available (needs branch cycle >= 2).
    sched.set_block(e, sched_of(vec![0, 1, 0, 1], 3));
    sched.set_block(out, sched_of(vec![0, 1, 2], 3));
    let msg = single(&f, &Machine::wide(), &sched);
    assert_eq!(
        msg,
        "block b0 `e`: op 1 (cycle 1) not available at exit branch 3 (cycle 1): branch needs cycle >= 2"
    );
}

#[test]
fn tags_are_stable() {
    let (f, _) = ret_only();
    let vs = check_function(&f, &Machine::wide(), &ScheduledFunction::new(), &SchedOptions::default());
    assert_eq!(vs[0].tag(), "missing-block");
}

#[test]
fn valid_schedules_have_no_violations() {
    let (f, _) = ret_only();
    for machine in Machine::paper_suite() {
        let sched = schedule_function(&f, &machine, &SchedOptions::default());
        assert!(check_function(&f, &machine, &sched, &SchedOptions::default()).is_empty());
    }
}
