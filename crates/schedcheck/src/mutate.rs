//! Seeded schedule mutations: the checker's sensitivity harness.
//!
//! Each mutation is built from a site where it provably breaks a
//! constraint the checker enforces (an edge with positive latency, a cycle
//! that overflows when merged, …), so a surviving mutant is always checker
//! insensitivity, never a vacuous mutation.

use std::sync::{Arc, OnceLock};

use epic_analysis::{DepGraph, DepKind, DepOptions, GlobalLiveness, PredFacts};
use epic_ir::{BlockId, Function, UnitClass};
use epic_machine::Machine;
use epic_obs::{Counter, MetricsRegistry, Span};
use epic_sched::{schedule_function, SchedOptions, Schedule, ScheduledFunction};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::check::{check_function, exit_liveness_of};

fn mutants_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| MetricsRegistry::global().counter("schedcheck_mutants_total"))
}

fn killed_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| MetricsRegistry::global().counter("schedcheck_mutants_killed_total"))
}

/// The five seeded schedule mutations of the sensitivity harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// Swap the issue cycles of the two endpoints of a positive-latency
    /// dependence edge.
    SwapAcrossEdge,
    /// Merge one occupied cycle into an earlier one past the issue width.
    CompressCycle,
    /// Drop the last op's issue-cycle entry.
    DropOp,
    /// Move one op into a cycle whose unit slot is already full.
    OverfillSlot,
    /// Swap the issue cycles of two ordered exit branches.
    ReorderExits,
}

impl MutationKind {
    /// All kinds, in rotation order.
    pub const ALL: [MutationKind; 5] = [
        MutationKind::SwapAcrossEdge,
        MutationKind::CompressCycle,
        MutationKind::DropOp,
        MutationKind::OverfillSlot,
        MutationKind::ReorderExits,
    ];

    /// A stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MutationKind::SwapAcrossEdge => "swap-across-edge",
            MutationKind::CompressCycle => "compress-cycle",
            MutationKind::DropOp => "drop-op",
            MutationKind::OverfillSlot => "overfill-slot",
            MutationKind::ReorderExits => "reorder-exits",
        }
    }
}

/// One mutated schedule.
#[derive(Clone, Debug)]
pub struct Mutant {
    /// The mutation applied.
    pub kind: MutationKind,
    /// The block it was applied in.
    pub block: BlockId,
    /// Human-readable description of the mutated site.
    pub detail: String,
    /// The full schedule with the mutated block substituted.
    pub sched: ScheduledFunction,
}

/// A candidate mutation site: the mutated block schedule plus provenance.
struct Candidate {
    block: BlockId,
    schedule: Schedule,
    detail: String,
}

/// Applies one seeded mutation to `sched`, or returns `None` when no
/// mutation kind has an applicable site (e.g. an empty function).
///
/// The mutation kind rotates from `seed`, so a spread of seeds exercises
/// every kind that applies to the program.
pub fn mutate(
    func: &Function,
    machine: &Machine,
    opts: &SchedOptions,
    sched: &ScheduledFunction,
    seed: u64,
) -> Option<Mutant> {
    let mut candidates: [Vec<Candidate>; 5] = Default::default();
    let kind_index = |k: MutationKind| MutationKind::ALL.iter().position(|&x| x == k).unwrap();

    let live = GlobalLiveness::compute(func);
    let dep_opts = DepOptions {
        branch_latency: machine.branch_latency() as i32,
        pred_relaxation: opts.pred_relaxation,
        mem_classes: func.mem_classes().clone(),
    };
    let classes = [UnitClass::Int, UnitClass::Float, UnitClass::Mem, UnitClass::Branch];
    let class_of =
        |op: &epic_ir::Op| classes.iter().position(|&x| x == op.opcode.unit_class()).unwrap();

    for block in func.blocks_in_layout() {
        let Some(s) = sched.try_block(block.id) else { continue };
        let ops = &block.ops;
        if ops.is_empty() || s.cycles.len() != ops.len() {
            continue;
        }

        // DropOp: always applicable on a non-empty block.
        let mut dropped = s.clone();
        dropped.cycles.pop();
        candidates[kind_index(MutationKind::DropOp)].push(Candidate {
            block: block.id,
            schedule: dropped,
            detail: format!("dropped issue cycle of op {}", ops.len() - 1),
        });

        // Edge swaps need the same graph the checker rebuilds.
        let exit_live = exit_liveness_of(func, block, &live);
        let mut facts = PredFacts::compute(ops);
        let latency = |op: &epic_ir::Op| machine.latency_of(op);
        let graph = DepGraph::build(ops, &mut facts, &latency, &dep_opts, Some(&exit_live));
        for e in graph.edges() {
            if e.latency < 1 || s.cycles[e.from] == s.cycles[e.to] {
                continue;
            }
            let both_branches =
                e.kind == DepKind::Control && ops[e.from].is_branch() && ops[e.to].is_branch();
            let kind =
                if both_branches { MutationKind::ReorderExits } else { MutationKind::SwapAcrossEdge };
            let mut swapped = s.clone();
            swapped.cycles.swap(e.from, e.to);
            candidates[kind_index(kind)].push(Candidate {
                block: block.id,
                schedule: swapped,
                detail: format!(
                    "swapped cycles of ops {} and {} across a latency-{} edge",
                    e.from, e.to, e.latency
                ),
            });
        }

        // Occupancy per cycle, ordered, for the resource mutations.
        let mut occupied: Vec<(i64, [u32; 4])> = Vec::new();
        for (i, &c) in s.cycles.iter().enumerate() {
            match occupied.iter_mut().find(|(oc, _)| *oc == c) {
                Some((_, counts)) => counts[class_of(&ops[i])] += 1,
                None => {
                    let mut counts = [0u32; 4];
                    counts[class_of(&ops[i])] += 1;
                    occupied.push((c, counts));
                }
            }
        }
        occupied.sort_by_key(|&(c, _)| c);
        let overflows = |counts: &[u32; 4]| match machine.widths() {
            None => counts.iter().sum::<u32>() > 1,
            Some(w) => classes.iter().enumerate().any(|(ci, &cl)| counts[ci] > w.of(cl)),
        };

        // CompressCycle: merge a later cycle into an earlier one so the
        // union overflows.
        for (ai, &(c1, counts1)) in occupied.iter().enumerate() {
            for &(c2, counts2) in &occupied[ai + 1..] {
                let mut merged = counts1;
                for (m, c) in merged.iter_mut().zip(counts2.iter()) {
                    *m += c;
                }
                if !overflows(&merged) {
                    continue;
                }
                let mut compressed = s.clone();
                for c in compressed.cycles.iter_mut() {
                    if *c == c2 {
                        *c = c1;
                    }
                }
                candidates[kind_index(MutationKind::CompressCycle)].push(Candidate {
                    block: block.id,
                    schedule: compressed,
                    detail: format!("merged cycle {c2} into cycle {c1}"),
                });
            }
        }

        // OverfillSlot: move a single op into a cycle whose slot for its
        // class is already at capacity.
        for (i, &ci) in s.cycles.iter().enumerate() {
            let k = class_of(&ops[i]);
            for &(c, counts) in &occupied {
                if c == ci {
                    continue;
                }
                let full = match machine.widths() {
                    None => counts.iter().sum::<u32>() >= 1,
                    Some(w) => counts[k] >= w.of(classes[k]),
                };
                if !full {
                    continue;
                }
                let mut moved = s.clone();
                moved.cycles[i] = c;
                candidates[kind_index(MutationKind::OverfillSlot)].push(Candidate {
                    block: block.id,
                    schedule: moved,
                    detail: format!("moved op {i} into full cycle {c}"),
                });
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let start = (seed % MutationKind::ALL.len() as u64) as usize;
    for k in 0..MutationKind::ALL.len() {
        let kind = MutationKind::ALL[(start + k) % MutationKind::ALL.len()];
        let pool = &candidates[kind_index(kind)];
        if pool.is_empty() {
            continue;
        }
        let pick = &pool[rng.gen_range(0..pool.len())];
        let mut mutated = sched.clone();
        mutated.set_block(pick.block, pick.schedule.clone());
        return Some(Mutant {
            kind,
            block: pick.block,
            detail: pick.detail.clone(),
            sched: mutated,
        });
    }
    None
}

/// Result of a mutation kill-rate run.
#[derive(Clone, Debug)]
pub struct MutationReport {
    /// Whether the unmutated schedule passed the checker (it must).
    pub base_valid: bool,
    /// Seeds tried.
    pub attempted: u64,
    /// Seeds that produced an applicable mutant.
    pub applied: u64,
    /// Mutants the checker rejected.
    pub killed: u64,
    /// Descriptions of surviving mutants (empty at a 100% kill rate).
    pub survivors: Vec<String>,
}

impl MutationReport {
    /// True when the base schedule validated and every applied mutant was
    /// rejected.
    pub fn perfect(&self) -> bool {
        self.base_valid && self.applied > 0 && self.survivors.is_empty()
    }
}

/// Schedules `func`, then applies `tries` seeded mutations and counts how
/// many the checker rejects.
pub fn mutation_kill_rate(
    func: &Function,
    machine: &Machine,
    opts: &SchedOptions,
    tries: u64,
    base_seed: u64,
) -> MutationReport {
    let _span = Span::enter("schedcheck.mutate", "schedcheck");
    let sched = schedule_function(func, machine, opts);
    let base_valid = check_function(func, machine, &sched, opts).is_empty();
    let mut report = MutationReport {
        base_valid,
        attempted: 0,
        applied: 0,
        killed: 0,
        survivors: Vec::new(),
    };
    for t in 0..tries {
        report.attempted += 1;
        let Some(m) = mutate(func, machine, opts, &sched, base_seed.wrapping_add(t)) else {
            continue;
        };
        report.applied += 1;
        mutants_counter().inc();
        if check_function(func, machine, &m.sched, opts).is_empty() {
            report.survivors.push(format!(
                "{} in block b{} ({}) survived",
                m.kind.name(),
                m.block.0,
                m.detail
            ));
        } else {
            report.killed += 1;
            killed_counter().inc();
        }
    }
    report
}
