//! Cycle-accurate scheduled replay: the oracle for `epic-perf`.
//!
//! The performance methodology estimates execution time as
//! Σ over layout blocks of `schedule length × profile entry count`. The
//! replay oracle recomputes the same quantity a completely different way:
//! it walks the interpreter's dynamic block trace and charges each entered
//! block its schedule length *as it is entered*. The two must agree
//! exactly; a mismatch means the estimator and the execution model have
//! diverged (e.g. profile counts recorded against stale block ids).

use std::sync::{Arc, OnceLock};

use epic_interp::{run_traced, Input, Trap};
use epic_ir::Function;
use epic_machine::Machine;
use epic_obs::{Counter, MetricsRegistry, Span};
use epic_sched::{schedule_function, SchedOptions, ScheduledFunction};

fn replays_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| MetricsRegistry::global().counter("schedcheck_replays_total"))
}

/// Why a replay cross-check failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The program trapped while being traced.
    Trap(Trap),
    /// The static estimate and the replayed cycle count disagree.
    Mismatch {
        /// `epic_perf::weighted_cycles` on the run's profile.
        estimated: u64,
        /// Cycles accumulated by walking the block trace.
        replayed: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Trap(t) => write!(f, "trap during replay: {t:?}"),
            ReplayError::Mismatch { estimated, replayed } => {
                write!(f, "perf estimate {estimated} != replayed cycles {replayed}")
            }
        }
    }
}

/// Replays `input` through `sched`, returning the agreed cycle count.
///
/// # Errors
///
/// Returns [`ReplayError::Trap`] if execution traps, or
/// [`ReplayError::Mismatch`] when the trace-accumulated cycle count
/// differs from [`epic_perf::weighted_cycles`] on the run's own profile.
pub fn replay_cycles(
    func: &Function,
    input: &Input,
    sched: &ScheduledFunction,
) -> Result<u64, ReplayError> {
    let _span = Span::enter("schedcheck.replay", "schedcheck");
    replays_counter().inc();
    let mut replayed = 0u64;
    let outcome = run_traced(func, input, |b| {
        replayed += sched.try_block(b).map_or(0, |s| s.length.max(0) as u64);
    })
    .map_err(ReplayError::Trap)?;
    let estimated = epic_perf::weighted_cycles(func, &outcome.profile, sched);
    if estimated != replayed {
        return Err(ReplayError::Mismatch { estimated, replayed });
    }
    Ok(replayed)
}

/// Schedules `func` for `machine` and cross-checks the perf estimate
/// against a cycle-accurate replay of `input`.
///
/// # Errors
///
/// Same as [`replay_cycles`].
pub fn check_replay(
    func: &Function,
    input: &Input,
    machine: &Machine,
    opts: &SchedOptions,
) -> Result<u64, ReplayError> {
    let sched = schedule_function(func, machine, opts);
    replay_cycles(func, input, &sched)
}
