//! Cycle-accurate scheduled replay: the oracle for `epic-perf`.
//!
//! The performance methodology estimates execution time as
//! Σ over layout blocks of `block cost × profile entry count`, plus the
//! front end's misprediction penalty × taken-transfer count. The replay
//! oracle recomputes the same quantity a completely different way: it
//! walks the interpreter's dynamic trace-event stream and charges each
//! entered block its cost *as it is entered* and each taken transfer its
//! penalty *as it takes*. The two must agree exactly; a mismatch means
//! the estimator and the execution model have diverged (e.g. profile
//! counts recorded against stale block ids). Both sides saturate at
//! `u64::MAX`, so the agreement survives overflow-scale profiles too.

use std::sync::{Arc, OnceLock};

use epic_interp::{run_events, Input, Trap, TraceEvent};
use epic_ir::Function;
use epic_machine::{Frontend, Machine};
use epic_obs::{Counter, MetricsRegistry, Span};
use epic_sched::{schedule_function, SchedOptions, ScheduledFunction};

fn replays_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| MetricsRegistry::global().counter("schedcheck_replays_total"))
}

/// Why a replay cross-check failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The program trapped while being traced.
    Trap(Trap),
    /// The static estimate and the replayed cycle count disagree.
    Mismatch {
        /// `epic_perf::weighted_cycles` on the run's profile.
        estimated: u64,
        /// Cycles accumulated by walking the block trace.
        replayed: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Trap(t) => write!(f, "trap during replay: {t:?}"),
            ReplayError::Mismatch { estimated, replayed } => {
                write!(f, "perf estimate {estimated} != replayed cycles {replayed}")
            }
        }
    }
}

/// Replays `input` through `sched` under the paper's ideal front end,
/// returning the agreed cycle count.
///
/// # Errors
///
/// Returns [`ReplayError::Trap`] if execution traps, or
/// [`ReplayError::Mismatch`] when the trace-accumulated cycle count
/// differs from [`epic_perf::weighted_cycles`] on the run's own profile.
pub fn replay_cycles(
    func: &Function,
    input: &Input,
    sched: &ScheduledFunction,
) -> Result<u64, ReplayError> {
    replay_cycles_with(func, input, sched, &Frontend::ideal())
}

/// Like [`replay_cycles`] under an explicit front-end cost model: each
/// `Enter` event charges the block's (possibly fetch-limited) cost, each
/// `Taken` event charges the misprediction penalty. Accumulation
/// saturates, matching the estimator's saturating total exactly.
///
/// # Errors
///
/// Same as [`replay_cycles`].
pub fn replay_cycles_with(
    func: &Function,
    input: &Input,
    sched: &ScheduledFunction,
    frontend: &Frontend,
) -> Result<u64, ReplayError> {
    let _span = Span::enter("schedcheck.replay", "schedcheck");
    replays_counter().inc();
    let penalty = frontend.mispredict_penalty as u64;
    let mut replayed = 0u64;
    let outcome = run_events(func, input, |e| {
        replayed = replayed.saturating_add(match e {
            TraceEvent::Enter(b) => epic_perf::block_cycles(func, sched, b, frontend),
            TraceEvent::Taken(_) => penalty,
        });
    })
    .map_err(ReplayError::Trap)?;
    let estimated = epic_perf::weighted_cycles_with(func, &outcome.profile, sched, frontend);
    if estimated != replayed {
        return Err(ReplayError::Mismatch { estimated, replayed });
    }
    Ok(replayed)
}

/// Schedules `func` for `machine` and cross-checks the perf estimate
/// against a cycle-accurate replay of `input`, under the machine's own
/// front-end cost model.
///
/// # Errors
///
/// Same as [`replay_cycles`].
pub fn check_replay(
    func: &Function,
    input: &Input,
    machine: &Machine,
    opts: &SchedOptions,
) -> Result<u64, ReplayError> {
    let sched = schedule_function(func, machine, opts);
    replay_cycles_with(func, input, &sched, &machine.frontend())
}
