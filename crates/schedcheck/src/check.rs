//! The independent schedule checker.

use std::collections::BTreeMap;
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

use epic_analysis::{DepGraph, DepKind, DepOptions, ExitLiveness, GlobalLiveness, PredFacts};
use epic_ir::{Block, BlockId, Function, Opcode, UnitClass};
use epic_machine::Machine;
use epic_obs::{Counter, MetricsRegistry, Span};
use epic_sched::{SchedOptions, Schedule, ScheduledFunction};

use crate::violation::{ScheduleViolation, ViolationKind};

fn blocks_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| MetricsRegistry::global().counter("schedcheck_blocks_total"))
}

fn violations_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| MetricsRegistry::global().counter("schedcheck_violations_total"))
}

/// Validates `sched` against `func` on `machine`, re-deriving liveness,
/// predicate facts, and the dependence graph from scratch (the checker
/// never looks at the scheduler's internal state).
///
/// `opts` must be the options the schedule was produced with: disabling
/// `pred_relaxation` makes the checker reject overlaps only a
/// predicate-aware schedule may use.
///
/// Returns every violation found; an empty vector means the schedule is
/// valid. Checks per block, in layout order:
///
/// 1. **completeness** — a schedule exists, has exactly one issue cycle
///    per op, and no op carries the "never scheduled" sentinel;
/// 2. **length** — the declared length equals `max(issue + latency)`
///    recomputed from the issue cycles (so perf estimates cannot drift);
/// 3. **resources** — no cycle exceeds the machine's per-class issue
///    widths (or one op per cycle on the sequential machine);
/// 4. **dependences** — every edge of the rebuilt predicate-aware graph
///    satisfies `cycle(to) >= cycle(from) + latency`; control edges into
///    exit branches are reported as branch-order / exit-availability
///    violations for precise diagnostics.
///
/// Guards are positional: a schedule only permutes issue cycles, so guard
/// preservation is implied by completeness (checked op-for-op counts).
pub fn check_function(
    func: &Function,
    machine: &Machine,
    sched: &ScheduledFunction,
    opts: &SchedOptions,
) -> Vec<ScheduleViolation> {
    let _span = Span::enter("schedcheck.validate", "schedcheck");
    let mut violations = Vec::new();

    // Blocks the schedule names that the layout does not.
    let layout: HashSet<BlockId> = func.layout.iter().copied().collect();
    let mut extras: Vec<BlockId> =
        sched.iter().map(|(b, _)| b).filter(|b| !layout.contains(b)).collect();
    extras.sort_by_key(|b| b.0);
    for b in extras {
        violations.push(ScheduleViolation {
            block: b,
            block_name: func.try_block(b).map_or_else(|| "?".to_string(), |bl| bl.name.clone()),
            kind: ViolationKind::ExtraBlock,
        });
    }

    let live = GlobalLiveness::compute(func);
    let dep_opts = DepOptions {
        branch_latency: machine.branch_latency() as i32,
        pred_relaxation: opts.pred_relaxation,
        mem_classes: func.mem_classes().clone(),
    };
    for block in func.blocks_in_layout() {
        blocks_counter().inc();
        match sched.try_block(block.id) {
            None => violations.push(ScheduleViolation {
                block: block.id,
                block_name: block.name.clone(),
                kind: ViolationKind::MissingBlock,
            }),
            Some(s) => check_block(func, block, s, machine, &live, &dep_opts, &mut violations),
        }
    }
    violations_counter().add(violations.len() as u64);
    violations
}

/// Exit liveness of one block, rebuilt exactly as `schedule_function`
/// derives it: each side exit sees the live-in set of its target; the
/// fall-through end sees the live-in set of the layout successor.
///
/// Public so external tests can rebuild the same dependence graph the
/// checker (and scheduler) use — e.g. to compare schedule lengths against
/// the graph's critical-path height.
pub fn exit_liveness_of(func: &Function, block: &Block, live: &GlobalLiveness) -> ExitLiveness {
    let mut exit_live = ExitLiveness::default();
    for (i, op) in block.ops.iter().enumerate() {
        if !op.is_branch() {
            continue;
        }
        let (regs, preds) = match op.opcode {
            Opcode::Branch => match op.branch_target() {
                Some(t) => (
                    live.live_in_regs.get(&t).cloned().unwrap_or_default(),
                    live.live_in_preds.get(&t).cloned().unwrap_or_default(),
                ),
                None => (HashSet::new(), HashSet::new()),
            },
            _ => (HashSet::new(), HashSet::new()),
        };
        exit_live.at_op.insert(i, (regs, preds));
    }
    if let Some(ft) = func.fallthrough_of(block.id) {
        exit_live.at_end = (
            live.live_in_regs.get(&ft).cloned().unwrap_or_default(),
            live.live_in_preds.get(&ft).cloned().unwrap_or_default(),
        );
    }
    exit_live
}

fn check_block(
    func: &Function,
    block: &Block,
    s: &Schedule,
    machine: &Machine,
    live: &GlobalLiveness,
    dep_opts: &DepOptions,
    violations: &mut Vec<ScheduleViolation>,
) {
    let ops = &block.ops;
    let fail = |kind: ViolationKind| ScheduleViolation {
        block: block.id,
        block_name: block.name.clone(),
        kind,
    };

    // 1. Completeness: one issue cycle per op, none negative.
    if s.cycles.len() != ops.len() {
        violations.push(fail(ViolationKind::OpCountMismatch {
            ops: ops.len(),
            scheduled: s.cycles.len(),
        }));
        return;
    }
    let mut incomplete = false;
    for (i, &c) in s.cycles.iter().enumerate() {
        if c < 0 {
            violations.push(fail(ViolationKind::UnscheduledOp { op: i, cycle: c }));
            incomplete = true;
        }
    }
    if incomplete {
        return;
    }

    // 2. Declared length vs. recomputed length.
    let computed = if ops.is_empty() {
        0
    } else {
        (0..ops.len())
            .map(|i| s.cycles[i] + machine.latency_of(&ops[i]) as i64)
            .max()
            .unwrap_or(0)
            .max(1)
    };
    if s.length != computed {
        violations.push(fail(ViolationKind::LengthMismatch { declared: s.length, computed }));
    }

    // 3. Resource feasibility per cycle.
    let classes = [UnitClass::Int, UnitClass::Float, UnitClass::Mem, UnitClass::Branch];
    let mut by_cycle: BTreeMap<i64, [u32; 4]> = BTreeMap::new();
    for (i, &c) in s.cycles.iter().enumerate() {
        let ci = classes
            .iter()
            .position(|&x| x == ops[i].opcode.unit_class())
            .expect("all classes");
        by_cycle.entry(c).or_default()[ci] += 1;
    }
    match machine.widths() {
        None => {
            for (&c, counts) in &by_cycle {
                let total: u32 = counts.iter().sum();
                if total > 1 {
                    violations.push(fail(ViolationKind::IssueOverflow {
                        cycle: c,
                        class: None,
                        used: total,
                        width: 1,
                    }));
                }
            }
        }
        Some(w) => {
            for (&c, counts) in &by_cycle {
                for (ci, &class) in classes.iter().enumerate() {
                    if counts[ci] > w.of(class) {
                        violations.push(fail(ViolationKind::IssueOverflow {
                            cycle: c,
                            class: Some(class),
                            used: counts[ci],
                            width: w.of(class),
                        }));
                    }
                }
            }
        }
    }

    // 4. Dependence-edge latencies over the independently rebuilt graph.
    let exit_live = exit_liveness_of(func, block, live);
    let mut facts = PredFacts::compute(ops);
    let latency = |op: &epic_ir::Op| machine.latency_of(op);
    let graph = DepGraph::build(ops, &mut facts, &latency, dep_opts, Some(&exit_live));
    for e in graph.edges() {
        let (from_cycle, to_cycle) = (s.cycles[e.from], s.cycles[e.to]);
        if to_cycle >= from_cycle + e.latency as i64 {
            continue;
        }
        // Control edges into an exit branch are the scheduler's branch
        // ordering and exit availability constraints: name them precisely.
        let kind = if e.kind == DepKind::Control && ops[e.to].is_branch() {
            if ops[e.from].is_branch() {
                ViolationKind::BranchOrder {
                    first: e.from,
                    second: e.to,
                    first_cycle: from_cycle,
                    second_cycle: to_cycle,
                    gap: e.latency,
                }
            } else {
                ViolationKind::ExitAvailability {
                    def: e.from,
                    branch: e.to,
                    def_cycle: from_cycle,
                    branch_cycle: to_cycle,
                    needed: from_cycle + e.latency as i64,
                }
            }
        } else {
            ViolationKind::DepViolation {
                dep: e.kind,
                from: e.from,
                to: e.to,
                latency: e.latency,
                from_cycle,
                to_cycle,
            }
        };
        violations.push(fail(kind));
    }
}
