//! Structured schedule violations with stable rendering.

use std::fmt;

use epic_analysis::DepKind;
use epic_ir::{BlockId, UnitClass};

/// What a schedule got wrong, independent of which block it happened in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A block in the function layout has no schedule.
    MissingBlock,
    /// The schedule names a block that is not in the function layout.
    ExtraBlock,
    /// The schedule has a different number of issue cycles than the block
    /// has ops: an op was dropped or duplicated.
    OpCountMismatch {
        /// Ops in the block.
        ops: usize,
        /// Issue-cycle entries in the schedule.
        scheduled: usize,
    },
    /// An op carries a negative issue cycle (the scheduler's "never
    /// scheduled" sentinel leaked through, or a mutation removed it).
    UnscheduledOp {
        /// Op position in the block.
        op: usize,
        /// The bogus issue cycle.
        cycle: i64,
    },
    /// The declared schedule length disagrees with `max(issue + latency)`
    /// recomputed from the issue cycles.
    LengthMismatch {
        /// Length the schedule declares.
        declared: i64,
        /// Length recomputed from issue cycles and machine latencies.
        computed: i64,
    },
    /// A dependence edge's minimum cycle distance is not honored.
    DepViolation {
        /// Edge kind in the independently rebuilt dependence graph.
        dep: DepKind,
        /// Source op position.
        from: usize,
        /// Destination op position.
        to: usize,
        /// Minimum cycle distance the edge requires.
        latency: i32,
        /// Scheduled issue cycle of the source.
        from_cycle: i64,
        /// Scheduled issue cycle of the destination.
        to_cycle: i64,
    },
    /// A cycle issues more ops than the machine has units for.
    IssueOverflow {
        /// The overfull cycle.
        cycle: i64,
        /// Overfull unit class; `None` on the sequential machine, whose
        /// single slot is shared by every class.
        class: Option<UnitClass>,
        /// Ops issued in that cycle (of `class` when given).
        used: u32,
        /// The machine's issue width for that slot.
        width: u32,
    },
    /// A later exit branch issues inside the shadow of an earlier,
    /// non-disjoint branch.
    BranchOrder {
        /// The earlier branch's op position.
        first: usize,
        /// The later branch's op position.
        second: usize,
        /// Issue cycle of the earlier branch.
        first_cycle: i64,
        /// Issue cycle of the later branch.
        second_cycle: i64,
        /// Minimum cycle distance (the exposed branch latency).
        gap: i32,
    },
    /// A value live at an exit (or a pending store) is not complete when
    /// the branch takes.
    ExitAvailability {
        /// The producing op's position.
        def: usize,
        /// The exit branch's position.
        branch: usize,
        /// Issue cycle of the producer.
        def_cycle: i64,
        /// Issue cycle of the branch.
        branch_cycle: i64,
        /// Earliest legal issue cycle of the branch.
        needed: i64,
    },
}

/// One violation found by the checker, anchored to a block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleViolation {
    /// The block the violation is in (for [`ViolationKind::ExtraBlock`],
    /// the block the schedule names).
    pub block: BlockId,
    /// The block's name, or `"?"` when the block is not in the function.
    pub block_name: String,
    /// What went wrong.
    pub kind: ViolationKind,
}

fn dep_name(k: DepKind) -> &'static str {
    match k {
        DepKind::Flow => "flow",
        DepKind::Anti => "anti",
        DepKind::Output => "output",
        DepKind::Mem => "mem",
        DepKind::Control => "control",
    }
}

fn class_name(c: UnitClass) -> &'static str {
    match c {
        UnitClass::Int => "int",
        UnitClass::Float => "float",
        UnitClass::Mem => "mem",
        UnitClass::Branch => "branch",
    }
}

impl ScheduleViolation {
    /// A stable machine-readable tag for the violation kind (used by
    /// counters and triage).
    pub fn tag(&self) -> &'static str {
        match self.kind {
            ViolationKind::MissingBlock => "missing-block",
            ViolationKind::ExtraBlock => "extra-block",
            ViolationKind::OpCountMismatch { .. } => "op-count",
            ViolationKind::UnscheduledOp { .. } => "unscheduled-op",
            ViolationKind::LengthMismatch { .. } => "length",
            ViolationKind::DepViolation { .. } => "dep",
            ViolationKind::IssueOverflow { .. } => "issue-overflow",
            ViolationKind::BranchOrder { .. } => "branch-order",
            ViolationKind::ExitAvailability { .. } => "exit-availability",
        }
    }
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ViolationKind::ExtraBlock => {
                return write!(f, "schedule names block b{}, which is not in the layout", self.block.0);
            }
            _ => write!(f, "block b{} `{}`: ", self.block.0, self.block_name)?,
        }
        match &self.kind {
            ViolationKind::ExtraBlock => unreachable!("handled above"),
            ViolationKind::MissingBlock => {
                write!(f, "no schedule for a block in the layout")
            }
            ViolationKind::OpCountMismatch { ops, scheduled } => {
                write!(f, "{ops} ops but {scheduled} scheduled cycles")
            }
            ViolationKind::UnscheduledOp { op, cycle } => {
                write!(f, "op {op} has negative issue cycle {cycle}")
            }
            ViolationKind::LengthMismatch { declared, computed } => {
                write!(f, "declared length {declared} but issue cycles imply {computed}")
            }
            ViolationKind::DepViolation { dep, from, to, latency, from_cycle, to_cycle } => {
                write!(
                    f,
                    "{} edge {from}->{to} (latency {latency}) violated: cycles {from_cycle} -> {to_cycle}",
                    dep_name(*dep)
                )
            }
            ViolationKind::IssueOverflow { cycle, class, used, width } => match class {
                None => write!(f, "cycle {cycle} issues {used} ops on the sequential machine"),
                Some(c) => write!(
                    f,
                    "cycle {cycle} issues {used} {} ops but the machine has {width} {} units",
                    class_name(*c),
                    class_name(*c)
                ),
            },
            ViolationKind::BranchOrder { first, second, first_cycle, second_cycle, gap } => {
                write!(
                    f,
                    "branch {second} (cycle {second_cycle}) in the shadow of branch {first} (cycle {first_cycle}): needs gap {gap}"
                )
            }
            ViolationKind::ExitAvailability { def, branch, def_cycle, branch_cycle, needed } => {
                write!(
                    f,
                    "op {def} (cycle {def_cycle}) not available at exit branch {branch} (cycle {branch_cycle}): branch needs cycle >= {needed}"
                )
            }
        }
    }
}
