//! # epic-schedcheck
//!
//! Translation validation for EPIC schedules. Every number the
//! reproduction reports is `schedule length × profile weight`, so the
//! list scheduler (`epic-sched`) and estimator (`epic-perf`) are the
//! trusted computing base. This crate removes them from it:
//!
//! - [`check_function`] independently re-derives liveness, predicate
//!   facts, and the predicate-aware dependence graph for each block and
//!   validates a [`ScheduledFunction`](epic_sched::ScheduledFunction)
//!   against dependence latencies, per-class issue widths, exit-branch
//!   ordering / availability, and completeness, returning structured
//!   [`ScheduleViolation`]s instead of panicking.
//! - [`check_replay`] walks the interpreter's dynamic block trace through
//!   the per-block schedules (cycle-accurate scheduled replay) and proves
//!   the `epic-perf` estimate equals the replayed cycle count.
//! - [`mutation_kill_rate`] applies seeded schedule mutations — swap two
//!   ops across a latency edge, compress a cycle past the issue width,
//!   drop an op, overfill a unit slot, reorder exit branches — and
//!   demands the checker reject every one (a 100% mutant kill rate).
//!
//! The checker's work is observable through `schedcheck.*` spans and the
//! `schedcheck_*` counters of `epic-obs`.
//!
//! ```
//! use epic_ir::{FunctionBuilder, Operand};
//! use epic_machine::Machine;
//! use epic_sched::{schedule_function, SchedOptions};
//! use epic_schedcheck::check_function;
//!
//! let mut b = FunctionBuilder::new("f");
//! let e = b.block("e");
//! b.switch_to(e);
//! let x = b.movi(1);
//! let _ = b.add(x.into(), Operand::Imm(2));
//! b.ret();
//! let f = b.finish();
//! let opts = SchedOptions::default();
//! let sched = schedule_function(&f, &Machine::wide(), &opts);
//! assert!(check_function(&f, &Machine::wide(), &sched, &opts).is_empty());
//! ```

mod check;
mod mutate;
mod replay;
mod violation;

pub use check::{check_function, exit_liveness_of};
pub use mutate::{mutate, mutation_kill_rate, Mutant, MutationKind, MutationReport};
pub use replay::{check_replay, replay_cycles, replay_cycles_with, ReplayError};
pub use violation::{ScheduleViolation, ViolationKind};
