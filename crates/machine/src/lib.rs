//! # epic-machine
//!
//! Machine descriptions for the regular EPIC processors of the paper's
//! evaluation (§7): *sequential*, *narrow*, *medium*, *wide*, and
//! *infinite*, described by an `(I, F, M, B)` tuple of per-class issue
//! widths, plus the paper's operation latencies:
//!
//! | operation | latency |
//! |---|---|
//! | simple integer | 1 |
//! | simple floating point | 3 |
//! | memory load | 2 |
//! | memory store | 1 |
//! | integer / floating multiply | 3 |
//! | integer / floating divide | 8 |
//! | branch | 1 (configurable) |
//!
//! ```
//! use epic_machine::Machine;
//!
//! let m = Machine::medium();
//! assert_eq!(m.name(), "medium");
//! assert_eq!(m.widths().unwrap().int, 4);
//! ```

use epic_ir::{Op, Opcode, UnitClass};

/// Per-class issue widths of a regular EPIC processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Widths {
    /// Integer units (`I`).
    pub int: u32,
    /// Floating-point units (`F`).
    pub float: u32,
    /// Memory units (`M`).
    pub mem: u32,
    /// Branch units (`B`).
    pub branch: u32,
}

impl Widths {
    /// The width of one unit class.
    pub fn of(&self, class: UnitClass) -> u32 {
        match class {
            UnitClass::Int => self.int,
            UnitClass::Float => self.float,
            UnitClass::Mem => self.mem,
            UnitClass::Branch => self.branch,
        }
    }
}

/// Operation latencies in cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latencies {
    /// Simple integer ALU ops, compares, predicate init, moves.
    pub int: u32,
    /// Simple floating-point add/subtract.
    pub float: u32,
    /// Integer and floating multiply.
    pub mul: u32,
    /// Integer and floating divide / remainder.
    pub div: u32,
    /// Memory load.
    pub load: u32,
    /// Memory store.
    pub store: u32,
    /// Prepare-to-branch.
    pub pbr: u32,
    /// Branch (the *exposed* branch latency of §3).
    pub branch: u32,
}

impl Default for Latencies {
    /// The paper's latencies with branch latency 1 (Table 2's setting).
    fn default() -> Self {
        Latencies { int: 1, float: 3, mul: 3, div: 8, load: 2, store: 1, pbr: 1, branch: 1 }
    }
}

/// Front-end cost model: branch misprediction penalty and instruction
/// fetch rate.
///
/// The paper's estimation methodology (§7) assumes an ideal front end —
/// no misprediction penalty, unlimited fetch — which is exactly the
/// [`Frontend::default`]. Non-zero settings model a modern-ish front end:
/// every *taken* control transfer (taken branch or return) redirects the
/// fetch unit and is charged `mispredict_penalty` extra cycles, and a
/// block whose operation count exceeds what `fetch_width` operations per
/// cycle can supply is stretched to its fetch-limited length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Frontend {
    /// Extra cycles charged per taken control transfer (0 = ideal,
    /// perfectly predicted front end).
    pub mispredict_penalty: u32,
    /// Operations fetched per cycle; 0 models unlimited fetch bandwidth
    /// (the paper's implicit setting).
    pub fetch_width: u32,
}

impl Default for Frontend {
    /// The ideal front end of the paper's methodology: zero penalty,
    /// unlimited fetch.
    fn default() -> Self {
        Frontend { mispredict_penalty: 0, fetch_width: 0 }
    }
}

impl Frontend {
    /// The paper's implicit front end: zero penalty, unlimited fetch.
    pub fn ideal() -> Frontend {
        Frontend::default()
    }

    /// A modern-ish front end for sensitivity studies: an 8-cycle redirect
    /// per taken control transfer and a 4-operation-per-cycle fetch unit.
    pub fn modern() -> Frontend {
        Frontend { mispredict_penalty: 8, fetch_width: 4 }
    }

    /// True when this front end adds no cost over the paper's model.
    pub fn is_ideal(&self) -> bool {
        self.mispredict_penalty == 0 && self.fetch_width == 0
    }

    /// Cycles needed to fetch `ops` operations: `ceil(ops / fetch_width)`,
    /// or 0 under unlimited fetch bandwidth.
    pub fn fetch_cycles(&self, ops: usize) -> u64 {
        if self.fetch_width == 0 {
            return 0;
        }
        (ops as u64).div_ceil(self.fetch_width as u64)
    }
}

/// A target processor description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Machine {
    name: String,
    /// `None` models the *sequential* processor, which issues exactly one
    /// operation of any type per cycle.
    widths: Option<Widths>,
    latencies: Latencies,
    frontend: Frontend,
}

impl Machine {
    /// Creates a custom machine with the ideal (paper) front end.
    pub fn new(name: impl Into<String>, widths: Option<Widths>, latencies: Latencies) -> Machine {
        Machine { name: name.into(), widths, latencies, frontend: Frontend::ideal() }
    }

    /// The *sequential* processor: one operation of any type per cycle.
    pub fn sequential() -> Machine {
        Machine::new("sequential", None, Latencies::default())
    }

    /// The *narrow* processor: `(2, 1, 1, 1)`.
    pub fn narrow() -> Machine {
        Machine::new("narrow", Some(Widths { int: 2, float: 1, mem: 1, branch: 1 }), Latencies::default())
    }

    /// The *medium* processor: `(4, 2, 2, 1)`.
    pub fn medium() -> Machine {
        Machine::new("medium", Some(Widths { int: 4, float: 2, mem: 2, branch: 1 }), Latencies::default())
    }

    /// The *wide* processor: `(8, 4, 4, 2)`.
    pub fn wide() -> Machine {
        Machine::new("wide", Some(Widths { int: 8, float: 4, mem: 4, branch: 2 }), Latencies::default())
    }

    /// The *infinite* processor: `(75, 25, 25, 25)`.
    pub fn infinite() -> Machine {
        Machine::new(
            "infinite",
            Some(Widths { int: 75, float: 25, mem: 25, branch: 25 }),
            Latencies::default(),
        )
    }

    /// The five processors of Table 2, in the paper's column order.
    pub fn paper_suite() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::narrow(),
            Machine::medium(),
            Machine::wide(),
            Machine::infinite(),
        ]
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issue widths (`None` for the sequential processor).
    pub fn widths(&self) -> Option<Widths> {
        self.widths
    }

    /// The latency table.
    pub fn latencies(&self) -> Latencies {
        self.latencies
    }

    /// Returns a copy with a different exposed branch latency.
    pub fn with_branch_latency(mut self, branch: u32) -> Machine {
        self.latencies.branch = branch;
        self
    }

    /// Returns a copy with a different front-end cost model.
    pub fn with_frontend(mut self, frontend: Frontend) -> Machine {
        self.frontend = frontend;
        self
    }

    /// Returns a copy under a different display name, so front-end variants
    /// of the same core stay distinguishable in reports.
    pub fn with_name(mut self, name: impl Into<String>) -> Machine {
        self.name = name.into();
        self
    }

    /// The front-end cost model.
    pub fn frontend(&self) -> Frontend {
        self.frontend
    }

    /// The producer latency of an operation on this machine.
    pub fn latency_of(&self, op: &Op) -> u32 {
        use Opcode::*;
        let l = self.latencies;
        match op.opcode {
            Add | Sub | And | Or | Xor | Shl | Shr | Mov | Cmpp(_) | PredInit => l.int,
            Mul | FMul => l.mul,
            Div | Rem | FDiv => l.div,
            FAdd | FSub => l.float,
            Load | LoadS => l.load,
            Store => l.store,
            Pbr => l.pbr,
            Branch | Ret => l.branch,
        }
    }

    /// The exposed branch latency.
    pub fn branch_latency(&self) -> u32 {
        self.latencies.branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{Dest, OpId, Operand, Reg};

    fn op(opcode: Opcode) -> Op {
        Op {
            id: OpId(0),
            opcode,
            dests: vec![Dest::Reg(Reg(0))],
            srcs: vec![Operand::Imm(0), Operand::Imm(0)],
            guard: None,
        }
    }

    #[test]
    fn presets_match_paper() {
        assert_eq!(Machine::sequential().widths(), None);
        assert_eq!(
            Machine::narrow().widths(),
            Some(Widths { int: 2, float: 1, mem: 1, branch: 1 })
        );
        assert_eq!(
            Machine::medium().widths(),
            Some(Widths { int: 4, float: 2, mem: 2, branch: 1 })
        );
        assert_eq!(
            Machine::wide().widths(),
            Some(Widths { int: 8, float: 4, mem: 4, branch: 2 })
        );
        assert_eq!(
            Machine::infinite().widths(),
            Some(Widths { int: 75, float: 25, mem: 25, branch: 25 })
        );
        assert_eq!(Machine::paper_suite().len(), 5);
    }

    #[test]
    fn latencies_match_paper() {
        let m = Machine::medium();
        assert_eq!(m.latency_of(&op(Opcode::Add)), 1);
        assert_eq!(m.latency_of(&op(Opcode::FAdd)), 3);
        assert_eq!(m.latency_of(&op(Opcode::Load)), 2);
        assert_eq!(m.latency_of(&op(Opcode::Store)), 1);
        assert_eq!(m.latency_of(&op(Opcode::Mul)), 3);
        assert_eq!(m.latency_of(&op(Opcode::FDiv)), 8);
        assert_eq!(m.latency_of(&op(Opcode::Branch)), 1);
        assert_eq!(m.latency_of(&op(Opcode::Cmpp(epic_ir::CmpCond::Eq))), 1);
    }

    #[test]
    fn branch_latency_override() {
        let m = Machine::medium().with_branch_latency(3);
        assert_eq!(m.branch_latency(), 3);
        assert_eq!(m.latency_of(&op(Opcode::Branch)), 3);
        assert_eq!(m.latency_of(&op(Opcode::Add)), 1);
    }

    #[test]
    fn presets_have_the_paper_frontend() {
        for m in Machine::paper_suite() {
            assert!(m.frontend().is_ideal(), "{} must default to the ideal front end", m.name());
        }
        assert!(Machine::new("x", None, Latencies::default()).frontend().is_ideal());
    }

    #[test]
    fn frontend_override() {
        let fe = Frontend { mispredict_penalty: 8, fetch_width: 4 };
        let m = Machine::medium().with_frontend(fe);
        assert_eq!(m.frontend(), fe);
        assert!(!m.frontend().is_ideal());
        assert_ne!(m, Machine::medium(), "front end participates in machine identity");
    }

    #[test]
    fn fetch_cycles_rounds_up() {
        let fe = Frontend { mispredict_penalty: 0, fetch_width: 4 };
        assert_eq!(fe.fetch_cycles(0), 0);
        assert_eq!(fe.fetch_cycles(1), 1);
        assert_eq!(fe.fetch_cycles(4), 1);
        assert_eq!(fe.fetch_cycles(5), 2);
        assert_eq!(Frontend::ideal().fetch_cycles(1000), 0);
    }

    #[test]
    fn widths_by_class() {
        let w = Machine::wide().widths().unwrap();
        assert_eq!(w.of(UnitClass::Int), 8);
        assert_eq!(w.of(UnitClass::Float), 4);
        assert_eq!(w.of(UnitClass::Mem), 4);
        assert_eq!(w.of(UnitClass::Branch), 2);
    }
}
