//! # epic-machine
//!
//! Machine descriptions for the regular EPIC processors of the paper's
//! evaluation (§7): *sequential*, *narrow*, *medium*, *wide*, and
//! *infinite*, described by an `(I, F, M, B)` tuple of per-class issue
//! widths, plus the paper's operation latencies:
//!
//! | operation | latency |
//! |---|---|
//! | simple integer | 1 |
//! | simple floating point | 3 |
//! | memory load | 2 |
//! | memory store | 1 |
//! | integer / floating multiply | 3 |
//! | integer / floating divide | 8 |
//! | branch | 1 (configurable) |
//!
//! ```
//! use epic_machine::Machine;
//!
//! let m = Machine::medium();
//! assert_eq!(m.name(), "medium");
//! assert_eq!(m.widths().unwrap().int, 4);
//! ```

use epic_ir::{Op, Opcode, UnitClass};

/// Per-class issue widths of a regular EPIC processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Widths {
    /// Integer units (`I`).
    pub int: u32,
    /// Floating-point units (`F`).
    pub float: u32,
    /// Memory units (`M`).
    pub mem: u32,
    /// Branch units (`B`).
    pub branch: u32,
}

impl Widths {
    /// The width of one unit class.
    pub fn of(&self, class: UnitClass) -> u32 {
        match class {
            UnitClass::Int => self.int,
            UnitClass::Float => self.float,
            UnitClass::Mem => self.mem,
            UnitClass::Branch => self.branch,
        }
    }
}

/// Operation latencies in cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latencies {
    /// Simple integer ALU ops, compares, predicate init, moves.
    pub int: u32,
    /// Simple floating-point add/subtract.
    pub float: u32,
    /// Integer and floating multiply.
    pub mul: u32,
    /// Integer and floating divide / remainder.
    pub div: u32,
    /// Memory load.
    pub load: u32,
    /// Memory store.
    pub store: u32,
    /// Prepare-to-branch.
    pub pbr: u32,
    /// Branch (the *exposed* branch latency of §3).
    pub branch: u32,
}

impl Default for Latencies {
    /// The paper's latencies with branch latency 1 (Table 2's setting).
    fn default() -> Self {
        Latencies { int: 1, float: 3, mul: 3, div: 8, load: 2, store: 1, pbr: 1, branch: 1 }
    }
}

/// A target processor description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Machine {
    name: String,
    /// `None` models the *sequential* processor, which issues exactly one
    /// operation of any type per cycle.
    widths: Option<Widths>,
    latencies: Latencies,
}

impl Machine {
    /// Creates a custom machine.
    pub fn new(name: impl Into<String>, widths: Option<Widths>, latencies: Latencies) -> Machine {
        Machine { name: name.into(), widths, latencies }
    }

    /// The *sequential* processor: one operation of any type per cycle.
    pub fn sequential() -> Machine {
        Machine::new("sequential", None, Latencies::default())
    }

    /// The *narrow* processor: `(2, 1, 1, 1)`.
    pub fn narrow() -> Machine {
        Machine::new("narrow", Some(Widths { int: 2, float: 1, mem: 1, branch: 1 }), Latencies::default())
    }

    /// The *medium* processor: `(4, 2, 2, 1)`.
    pub fn medium() -> Machine {
        Machine::new("medium", Some(Widths { int: 4, float: 2, mem: 2, branch: 1 }), Latencies::default())
    }

    /// The *wide* processor: `(8, 4, 4, 2)`.
    pub fn wide() -> Machine {
        Machine::new("wide", Some(Widths { int: 8, float: 4, mem: 4, branch: 2 }), Latencies::default())
    }

    /// The *infinite* processor: `(75, 25, 25, 25)`.
    pub fn infinite() -> Machine {
        Machine::new(
            "infinite",
            Some(Widths { int: 75, float: 25, mem: 25, branch: 25 }),
            Latencies::default(),
        )
    }

    /// The five processors of Table 2, in the paper's column order.
    pub fn paper_suite() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::narrow(),
            Machine::medium(),
            Machine::wide(),
            Machine::infinite(),
        ]
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Issue widths (`None` for the sequential processor).
    pub fn widths(&self) -> Option<Widths> {
        self.widths
    }

    /// The latency table.
    pub fn latencies(&self) -> Latencies {
        self.latencies
    }

    /// Returns a copy with a different exposed branch latency.
    pub fn with_branch_latency(mut self, branch: u32) -> Machine {
        self.latencies.branch = branch;
        self
    }

    /// The producer latency of an operation on this machine.
    pub fn latency_of(&self, op: &Op) -> u32 {
        use Opcode::*;
        let l = self.latencies;
        match op.opcode {
            Add | Sub | And | Or | Xor | Shl | Shr | Mov | Cmpp(_) | PredInit => l.int,
            Mul | FMul => l.mul,
            Div | Rem | FDiv => l.div,
            FAdd | FSub => l.float,
            Load | LoadS => l.load,
            Store => l.store,
            Pbr => l.pbr,
            Branch | Ret => l.branch,
        }
    }

    /// The exposed branch latency.
    pub fn branch_latency(&self) -> u32 {
        self.latencies.branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ir::{Dest, OpId, Operand, Reg};

    fn op(opcode: Opcode) -> Op {
        Op {
            id: OpId(0),
            opcode,
            dests: vec![Dest::Reg(Reg(0))],
            srcs: vec![Operand::Imm(0), Operand::Imm(0)],
            guard: None,
        }
    }

    #[test]
    fn presets_match_paper() {
        assert_eq!(Machine::sequential().widths(), None);
        assert_eq!(
            Machine::narrow().widths(),
            Some(Widths { int: 2, float: 1, mem: 1, branch: 1 })
        );
        assert_eq!(
            Machine::medium().widths(),
            Some(Widths { int: 4, float: 2, mem: 2, branch: 1 })
        );
        assert_eq!(
            Machine::wide().widths(),
            Some(Widths { int: 8, float: 4, mem: 4, branch: 2 })
        );
        assert_eq!(
            Machine::infinite().widths(),
            Some(Widths { int: 75, float: 25, mem: 25, branch: 25 })
        );
        assert_eq!(Machine::paper_suite().len(), 5);
    }

    #[test]
    fn latencies_match_paper() {
        let m = Machine::medium();
        assert_eq!(m.latency_of(&op(Opcode::Add)), 1);
        assert_eq!(m.latency_of(&op(Opcode::FAdd)), 3);
        assert_eq!(m.latency_of(&op(Opcode::Load)), 2);
        assert_eq!(m.latency_of(&op(Opcode::Store)), 1);
        assert_eq!(m.latency_of(&op(Opcode::Mul)), 3);
        assert_eq!(m.latency_of(&op(Opcode::FDiv)), 8);
        assert_eq!(m.latency_of(&op(Opcode::Branch)), 1);
        assert_eq!(m.latency_of(&op(Opcode::Cmpp(epic_ir::CmpCond::Eq))), 1);
    }

    #[test]
    fn branch_latency_override() {
        let m = Machine::medium().with_branch_latency(3);
        assert_eq!(m.branch_latency(), 3);
        assert_eq!(m.latency_of(&op(Opcode::Branch)), 3);
        assert_eq!(m.latency_of(&op(Opcode::Add)), 1);
    }

    #[test]
    fn widths_by_class() {
        let w = Machine::wide().widths().unwrap();
        assert_eq!(w.of(UnitClass::Int), 8);
        assert_eq!(w.of(UnitClass::Float), 4);
        assert_eq!(w.of(UnitClass::Mem), 4);
        assert_eq!(w.of(UnitClass::Branch), 2);
    }
}
